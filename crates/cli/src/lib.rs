//! Library backing the `gpgpu-covert` command-line tool: argument parsing
//! and subcommand execution, kept in a library so the logic is testable.

#![deny(missing_docs)]

use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_covert::colocation::{reverse_engineer_block_scheduler, reverse_engineer_warp_scheduler};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::linkmon::{AdaptiveLink, LinkEnvironment};
use gpgpu_covert::mitigations::{
    contention_detection_margin, evaluate_against_l1, evaluate_against_parallel_sfu, Mitigation,
};
use gpgpu_covert::noise::{run_sync_with_noise, NoiseKind};
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::{presets, DeviceSpec, TopologySpec};
use std::fmt::Write as _;

/// Usage text printed on argument errors and `help`.
pub const USAGE: &str = "\
usage: gpgpu-covert <command> [options]

commands:
  devices                     list the simulated GPU presets
  chat <message>              exfiltrate an ASCII message over the fastest channel
  zoo                         run every channel family once and summarize
  l1                          run the baseline L1 channel with event tracing
  recon                       reverse engineer the schedulers and caches
  noise                       run the channel under Rodinia-like interference
  mitigations                 evaluate the Section-9 defenses
  faults                      sweep fault intensity: raw vs FEC vs ARQ framing
  robust                      transmit under a fault storm + cache-hog noise,
                              printing the link diagnostic / escalation trace
  nvlink                      run the cross-GPU NVLink channel over a topology

options:
  --device <fermi|kepler|maxwell>   target preset (default kepler)
  --bits <n>                        message length for zoo/l1/faults (default 24)
  --exclusive                       enable exclusive co-location (noise command)
  --stats                           print cycle-engine counters after the run
  --trace-out <path>                write a Chrome-trace JSON of the run (l1 only)
  --profile                         print the contention profile (l1 only)
  --faults <spec>                   deterministic fault plan (faults/l1/robust/nvlink),
                                    e.g. seed=7,intensity=1,period=900000,burst=280000,set=2,kinds=evict+storm
  --adaptive                        enable the adaptive link layer (robust only):
                                    online calibration + degradation ladder
  --topology <spec>                 multi-GPU topology (nvlink/robust), e.g.
                                    devices=kepler+kepler,link=0-1:lat=40:slot=4:lanes=2
                                    (nvlink default: two of --device joined by one link)
";

/// Which subcommand to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// List device presets.
    Devices,
    /// Send an ASCII message over the full-parallel synchronized channel.
    Chat(String),
    /// One-line summary of every channel family.
    Zoo,
    /// Baseline L1 channel with cycle-level event tracing.
    L1,
    /// Scheduler/cache reverse engineering.
    Recon,
    /// Interference experiment.
    Noise,
    /// Mitigation evaluation.
    Mitigations,
    /// Fault-intensity sweep: raw vs FEC vs CRC/ARQ framing.
    Faults,
    /// Adaptive-link robustness demo: transmit under a fault storm plus a
    /// constant-cache-hog co-runner and print the escalation trace.
    Robust,
    /// Cross-GPU NVLink channel over a (default or `--topology`) topology.
    Nvlink,
    /// Print usage.
    Help,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
    /// Target device preset.
    pub device: String,
    /// Message bits for `zoo`.
    pub bits: usize,
    /// Exclusive co-location for `noise`.
    pub exclusive: bool,
    /// Print cycle-engine counters (`SimStats`) after the run.
    pub stats: bool,
    /// Write the run's Chrome-trace JSON here (`l1` only).
    pub trace_out: Option<String>,
    /// Print the per-SM/per-scheduler/per-set contention profile
    /// (`l1` only).
    pub profile: bool,
    /// Fault-plan spec string (`faults`/`l1`/`robust`), validated at parse
    /// time against [`gpgpu_sim::FaultPlan::from_spec`].
    pub faults: Option<String>,
    /// Run the adaptive link layer instead of the pinned static
    /// thresholds (`robust` only).
    pub adaptive: bool,
    /// Multi-GPU topology spec string (`nvlink`/`robust`), validated at
    /// parse time against [`gpgpu_spec::TopologySpec::from_spec`].
    pub topology: Option<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands, unknown
    /// options, or missing option values.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            command: Command::Help,
            device: "kepler".to_string(),
            bits: 24,
            exclusive: false,
            stats: false,
            trace_out: None,
            profile: false,
            faults: None,
            adaptive: false,
            topology: None,
        };
        let mut it = argv.iter().peekable();
        let cmd = it.next().ok_or("missing command")?;
        let mut positional: Vec<String> = Vec::new();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--device" => {
                    args.device = it.next().ok_or("--device needs a value")?.clone();
                }
                "--bits" => {
                    let v = it.next().ok_or("--bits needs a value")?;
                    args.bits = v.parse().map_err(|_| format!("invalid --bits value {v:?}"))?;
                }
                "--exclusive" => args.exclusive = true,
                "--stats" => args.stats = true,
                "--trace-out" => {
                    args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
                }
                "--profile" => args.profile = true,
                "--adaptive" => args.adaptive = true,
                "--faults" => {
                    let v = it.next().ok_or("--faults needs a spec")?;
                    gpgpu_sim::FaultPlan::from_spec(v)
                        .map_err(|e| format!("invalid --faults spec: {e}"))?;
                    args.faults = Some(v.clone());
                }
                "--topology" => {
                    let v = it.next().ok_or("--topology needs a spec")?;
                    TopologySpec::from_spec(v)
                        .map_err(|e| format!("invalid --topology spec: {e}"))?;
                    args.topology = Some(v.clone());
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown option {other:?}"));
                }
                other => positional.push(other.to_string()),
            }
        }
        args.command = match cmd.as_str() {
            "devices" => Command::Devices,
            "chat" => {
                let msg = positional.first().ok_or("chat needs a message argument")?;
                Command::Chat(msg.clone())
            }
            "zoo" => Command::Zoo,
            "l1" => Command::L1,
            "recon" => Command::Recon,
            "noise" => Command::Noise,
            "mitigations" => Command::Mitigations,
            "faults" => Command::Faults,
            "robust" => Command::Robust,
            "nvlink" => Command::Nvlink,
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(format!("unknown command {other:?}")),
        };
        if args.bits == 0 {
            return Err("--bits must be positive".to_string());
        }
        if args.command != Command::L1 && (args.trace_out.is_some() || args.profile) {
            return Err("--trace-out/--profile only apply to the l1 command".to_string());
        }
        if !matches!(
            args.command,
            Command::Faults | Command::L1 | Command::Robust | Command::Nvlink
        ) && args.faults.is_some()
        {
            return Err(
                "--faults only applies to the faults, l1, robust, and nvlink commands".to_string()
            );
        }
        if args.command != Command::Robust && args.adaptive {
            return Err("--adaptive only applies to the robust command".to_string());
        }
        if !matches!(args.command, Command::Nvlink | Command::Robust) && args.topology.is_some() {
            return Err("--topology only applies to the nvlink and robust commands".to_string());
        }
        Ok(args)
    }

    /// Resolves the device preset through the shared alias table.
    ///
    /// # Errors
    ///
    /// Unknown device names.
    pub fn spec(&self) -> Result<DeviceSpec, String> {
        presets::by_name(&self.device)
            .ok_or_else(|| format!("unknown device {:?} (fermi|kepler|maxwell)", self.device))
    }

    /// Resolves the multi-GPU topology: the `--topology` spec when given,
    /// otherwise two copies of `--device` joined by one default link.
    ///
    /// # Errors
    ///
    /// Unknown device names (the spec string itself was validated at parse
    /// time).
    pub fn topology_spec(&self) -> Result<TopologySpec, String> {
        match &self.topology {
            Some(s) => TopologySpec::from_spec(s).map_err(|e| e.to_string()),
            None => TopologySpec::dual(&self.device).map_err(|e| e.to_string()),
        }
    }
}

/// Executes the parsed command, returning the report text.
///
/// # Errors
///
/// Propagates channel/simulator failures as strings.
pub fn run(args: &Args) -> Result<String, String> {
    let mut out = String::new();
    // Cycle-engine counters accumulated across every transmission the
    // command performs; printed as a footer under `--stats`.
    let mut engine = gpgpu_sim::SimStats::default();
    match &args.command {
        Command::Help => out.push_str(USAGE),
        Command::Devices => {
            for d in presets::all() {
                let _ = writeln!(
                    out,
                    "{:<14} {:?}: {} SMs x {} schedulers, {} MHz, L1 {} B / L2 {} B",
                    d.name,
                    d.architecture,
                    d.num_sms,
                    d.sm.num_warp_schedulers,
                    d.clock_hz / 1_000_000,
                    d.const_l1.geometry.size_bytes(),
                    d.const_l2.geometry.size_bytes(),
                );
            }
        }
        Command::Chat(text) => {
            let spec = args.spec()?;
            let msg = Message::from_bytes(text.as_bytes());
            let data_sets = (spec.const_l1.geometry.num_sets() - 2).min(6) as u32;
            let ch = SyncChannel::new(spec.clone())
                .with_data_sets(data_sets)
                .map_err(|e| e.to_string())?
                .with_parallel_sms(spec.num_sms)
                .map_err(|e| e.to_string())?;
            let o = ch.transmit(&msg).map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "sent {} bits over {} ({} data sets x {} SMs)",
                msg.len(),
                spec.name,
                data_sets,
                spec.num_sms
            );
            let _ =
                writeln!(out, "received: {:?}", String::from_utf8_lossy(&o.received.to_bytes()));
            let _ =
                writeln!(out, "bandwidth: {:.0} Kbps, BER {:.2}%", o.bandwidth_kbps, o.ber * 100.0);
        }
        Command::Zoo => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC11);
            let mut row = |name: &str, o: gpgpu_covert::ChannelOutcome| {
                engine.merge(&o.stats);
                let _ = writeln!(
                    out,
                    "  {name:<32} {:>9.1} Kbps   BER {:>5.1}%",
                    o.bandwidth_kbps,
                    o.ber * 100.0
                );
            };
            row(
                "L1 cache (baseline)",
                L1Channel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "L2 cache (cross-SM)",
                L2Channel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "SFU __sinf",
                SfuChannel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            for s in AtomicScenario::ALL {
                row(
                    &format!("atomic: {}", s.label()),
                    AtomicChannel::new(spec.clone(), s)
                        .transmit(&msg)
                        .map_err(|e| e.to_string())?,
                );
            }
            row(
                "L1 synchronized",
                SyncChannel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "L2 synchronized",
                SyncChannel::new_l2(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "SFU parallel (sched x SMs)",
                ParallelSfuChannel::new(spec.clone())
                    .with_parallel_sms(spec.num_sms)
                    .map_err(|e| e.to_string())?
                    .transmit(&msg)
                    .map_err(|e| e.to_string())?,
            );
        }
        Command::L1 => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC14);
            let plan = args.faults.as_deref().map(gpgpu_sim::FaultPlan::from_spec).transpose()?;
            let mut ch = L1Channel::new(spec.clone());
            if let Some(p) = plan {
                ch = ch.with_faults(p);
            }
            let (o, capture) = ch
                .transmit_traced(&msg, gpgpu_sim::DEFAULT_TRACE_CAPACITY)
                .map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "L1 channel on {}: {} bits, {:.1} Kbps, BER {:.1}%",
                spec.name,
                msg.len(),
                o.bandwidth_kbps,
                o.ber * 100.0
            );
            if let Some(p) = plan {
                let _ = writeln!(out, "faults: {}", p.to_spec());
            }
            let _ = writeln!(
                out,
                "trace: {} events recorded, {} dropped (ring capacity {})",
                capture.events.len(),
                capture.events.dropped(),
                capture.events.capacity()
            );
            if let Some(path) = &args.trace_out {
                let json = capture.chrome_trace_json();
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
                let _ = writeln!(out, "wrote Chrome trace ({} bytes) to {path}", json.len());
            }
            if args.profile {
                out.push_str(&gpgpu_bench::report::render_contention_profile(
                    &capture.records(),
                    &capture.kernel_names,
                ));
            }
        }
        Command::Recon => {
            let spec = args.spec()?;
            let b = reverse_engineer_block_scheduler(&spec).map_err(|e| e.to_string())?;
            let w = reverse_engineer_warp_scheduler(&spec).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "device: {}", spec.name);
            let _ = writeln!(out, "block scheduler: leftover policy = {}", b.is_leftover_policy());
            let _ = writeln!(
                out,
                "  round robin {}, leftover co-location {}, queues when full {}",
                b.round_robin, b.leftover_colocation, b.queues_when_full
            );
            let _ = writeln!(out, "warp scheduler: assignment {:?}", w.assignment);
            let _ = writeln!(
                out,
                "  schedulers inferred from latency steps: {}",
                w.inferred_num_schedulers
            );
        }
        Command::Noise => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC12);
            let exp =
                run_sync_with_noise(&spec, &msg, &[NoiseKind::ConstantCacheHog], args.exclusive)
                    .map_err(|e| e.to_string())?;
            engine.merge(&exp.outcome.stats);
            let _ = writeln!(
                out,
                "constant-cache noise, exclusive co-location = {}: noise co-located = {}, BER = {:.1}%",
                args.exclusive,
                exp.noise_overlapped,
                exp.outcome.ber * 100.0
            );
        }
        Command::Faults => {
            // The sweep is pinned to the calibrated K40C sync channel; the
            // spec only overrides the fault plan, not the device.
            let base = match &args.faults {
                Some(s) => gpgpu_sim::FaultPlan::from_spec(s)?,
                None => gpgpu_bench::data::fault_sweep_plan(1.0),
            };
            let intensities = [0.0, 0.5, 1.0];
            let pts = gpgpu_bench::data::fault_sweep_with(args.bits, &intensities, base);
            let _ = writeln!(
                out,
                "fault sweep: {} bits over the synchronized L1 channel, plan {}",
                args.bits,
                base.to_spec()
            );
            let _ = writeln!(
                out,
                "{:>9}  {:>8} {:>8} {:>8}  {:>12} {:>12} {:>12}",
                "intensity", "raw BER", "FEC BER", "ARQ BER", "raw Kbps", "FEC Kbps", "ARQ Kbps"
            );
            for p in &pts {
                let _ = writeln!(
                    out,
                    "{:>9.2}  {:>7.1}% {:>7.1}% {:>7.1}%  {:>12.1} {:>12.1} {:>12.1}",
                    p.intensity,
                    p.raw_ber * 100.0,
                    p.fec_ber * 100.0,
                    p.arq_ber * 100.0,
                    p.raw_goodput_kbps,
                    p.fec_goodput_kbps,
                    p.arq_goodput_kbps,
                );
            }
            out.push_str(
                "note: fault bursts flip multiple bits per Hamming codeword, so FEC can\n\
                 trail the raw channel under heavy storms; ARQ retransmits instead.\n",
            );
        }
        Command::Robust => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC15);
            let plan = match &args.faults {
                Some(s) => gpgpu_sim::FaultPlan::from_spec(s)?,
                None => gpgpu_bench::data::fault_sweep_plan(1.0),
            };
            let mut env = LinkEnvironment::clean()
                .with_faults(plan)
                .with_noise(vec![NoiseKind::ConstantCacheHog], 40 + 30 * args.bits as u64);
            if let Some(s) = &args.topology {
                // Arms the ladder's terminal nvlink rung.
                env = env.with_topology(TopologySpec::from_spec(s).map_err(|e| e.to_string())?);
            }
            let link = AdaptiveLink::new(spec.clone()).with_env(env);
            let mode = if args.adaptive { "adaptive" } else { "static" };
            let _ = writeln!(
                out,
                "{mode} link on {}: {} bits under fault storm {} + constant-cache hog",
                spec.name,
                args.bits,
                plan.to_spec()
            );
            let o = if args.adaptive {
                link.transmit(&msg).map_err(|e| e.to_string())?
            } else {
                link.transmit_static(&msg).map_err(|e| e.to_string())?
            };
            out.push_str(&o.diagnostic.to_string());
            let _ = writeln!(out, "{mode} BER {:.2}%", o.diagnostic.ber * 100.0);
        }
        Command::Nvlink => {
            let topo = args.topology_spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC16);
            let mut ch = NvlinkChannel::new(topo).map_err(|e| e.to_string())?;
            if let Some(s) = &args.faults {
                ch = ch.with_faults(gpgpu_sim::FaultPlan::from_spec(s)?);
            }
            let (spy, trojan) = ch.endpoints();
            let link = ch.topology().links[0];
            let _ = writeln!(out, "topology: {}", ch.topology().to_spec());
            let _ = writeln!(
                out,
                "link 0: spy on device {spy}, trojan on device {trojan} \
                 (latency {} cycles, slot {}, {} lanes)",
                link.latency_cycles, link.slot_cycles, link.lanes
            );
            let (o, trace) = ch.transmit_traced(&msg).map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "nvlink channel: {} bits, {:.1} Kbps, BER {:.2}%",
                msg.len(),
                o.bandwidth_kbps,
                o.ber * 100.0
            );
            let _ = writeln!(out, "trace: {} link transfers recorded", trace.len());
        }
        Command::Mitigations => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(16, 0xC13);
            for m in [
                Mitigation::CachePartitioning { partitions: 2 },
                Mitigation::ClockFuzzing { granularity: 4096 },
            ] {
                let r = evaluate_against_l1(&spec, m, &msg).map_err(|e| e.to_string())?;
                engine.merge(&r.baseline.stats);
                engine.merge(&r.mitigated.stats);
                let _ = writeln!(
                    out,
                    "{m}: BER {:.1}% -> {:.1}%",
                    r.baseline.ber * 100.0,
                    r.mitigated.ber * 100.0
                );
            }
            let m = Mitigation::RandomizedWarpScheduling { seed: 0xD1CE };
            let r = evaluate_against_parallel_sfu(&spec, m, &msg).map_err(|e| e.to_string())?;
            engine.merge(&r.baseline.stats);
            engine.merge(&r.mitigated.stats);
            let _ = writeln!(
                out,
                "{m}: BER {:.1}% -> {:.1}%",
                r.baseline.ber * 100.0,
                r.mitigated.ber * 100.0
            );
            let (chan, benign) =
                contention_detection_margin(&spec, &msg).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "contention detector: channel score {chan} vs benign {benign}");
        }
    }
    if args.stats {
        let _ = writeln!(out, "engine: {engine}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_commands_and_options() {
        let a = Args::parse(&argv("zoo --device fermi --bits 8")).unwrap();
        assert_eq!(a.command, Command::Zoo);
        assert_eq!(a.device, "fermi");
        assert_eq!(a.bits, 8);

        let a = Args::parse(&argv("chat hello --device maxwell")).unwrap();
        assert_eq!(a.command, Command::Chat("hello".to_string()));

        let a = Args::parse(&argv("noise --exclusive")).unwrap();
        assert!(a.exclusive);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("frobnicate")).is_err());
        assert!(Args::parse(&argv("zoo --bits")).is_err());
        assert!(Args::parse(&argv("zoo --bits zero")).is_err());
        assert!(Args::parse(&argv("zoo --bits 0")).is_err());
        assert!(Args::parse(&argv("zoo --wat")).is_err());
        assert!(Args::parse(&argv("chat")).is_err());
        // Tracing flags are l1-only.
        assert!(Args::parse(&argv("l1 --trace-out")).is_err());
        assert!(Args::parse(&argv("zoo --trace-out t.json")).is_err());
        assert!(Args::parse(&argv("chat hi --profile")).is_err());
    }

    #[test]
    fn parses_l1_tracing_flags() {
        let a = Args::parse(&argv("l1 --trace-out t.json --profile --bits 4")).unwrap();
        assert_eq!(a.command, Command::L1);
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert!(a.profile);
        assert_eq!(a.bits, 4);
        // Tracing is optional; a bare l1 run is fine.
        let a = Args::parse(&argv("l1")).unwrap();
        assert_eq!(a.trace_out, None);
        assert!(!a.profile);
    }

    #[test]
    fn l1_writes_chrome_trace_and_profile() {
        let path = std::env::temp_dir().join("gpgpu_cli_l1_trace_test.json");
        let path_s = path.to_str().unwrap().to_string();
        let mut a = Args::parse(&argv("l1 --profile --bits 4")).unwrap();
        a.trace_out = Some(path_s.clone());
        let out = run(&a).unwrap();
        assert!(out.contains("L1 channel"), "{out}");
        assert!(out.contains("events recorded"), "{out}");
        assert!(out.contains("wrote Chrome trace"), "{out}");
        assert!(out.contains("contention profile"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with("{\"displayTimeUnit\""), "{}", &json[..60.min(json.len())]);
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""), "block spans");
    }

    #[test]
    fn faults_flag_accept_reject_matrix() {
        const SPEC: &str = "seed=7,intensity=1,period=900000,burst=280000,set=2,kinds=evict+storm";
        // Accepted on the commands that run a faultable channel.
        for cmd in ["faults", "l1", "nvlink"] {
            let a = Args::parse(&argv(&format!("{cmd} --faults {SPEC}"))).unwrap();
            assert_eq!(a.faults.as_deref(), Some(SPEC), "{cmd}");
        }
        // A bare faults command falls back to the calibrated built-in plan.
        let a = Args::parse(&argv("faults")).unwrap();
        assert_eq!(a.command, Command::Faults);
        assert_eq!(a.faults, None);
        // Accepted on robust too (the adaptive-link demo).
        let a = Args::parse(&argv(&format!("robust --faults {SPEC}"))).unwrap();
        assert_eq!(a.faults.as_deref(), Some(SPEC));
        // Rejected everywhere else, mirroring the tracing-flag validation.
        for cmd in ["devices", "zoo", "recon", "noise", "mitigations", "help", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --faults {SPEC}"))).unwrap_err();
            assert!(err.contains("--faults only applies"), "{cmd}: {err}");
        }
        // Missing value and malformed specs fail at parse time.
        assert!(Args::parse(&argv("faults --faults")).is_err());
        let err = Args::parse(&argv("faults --faults seed=banana")).unwrap_err();
        assert!(err.contains("invalid --faults spec"), "{err}");
        assert!(Args::parse(&argv("l1 --faults kinds=frobnicate")).is_err());
        assert!(Args::parse(&argv("faults --faults intensity=2.0")).is_err());
    }

    #[test]
    fn faults_command_reports_the_sweep() {
        let a = Args::parse(&argv("faults --bits 48")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("fault sweep: 48 bits"), "{out}");
        assert!(out.contains("intensity"), "{out}");
        // Header + one row per intensity point.
        assert_eq!(out.matches("Kbps").count(), 3, "{out}");
        assert_eq!(out.lines().filter(|l| l.trim_start().starts_with('0')).count(), 2, "{out}");
        assert!(out.contains("ARQ retransmits instead"), "{out}");
    }

    #[test]
    fn faults_command_honors_a_custom_plan() {
        let a =
            Args::parse(&argv("faults --bits 16 --faults seed=9,intensity=1,kinds=evict")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("plan seed=9"), "{out}");
        assert!(out.contains("kinds=evict"), "{out}");
    }

    #[test]
    fn l1_accepts_a_fault_plan_and_echoes_it() {
        let a = Args::parse(&argv("l1 --bits 8 --faults seed=5,intensity=0,kinds=all")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("L1 channel"), "{out}");
        // Intensity 0 installs the hooks without firing a fault: the run
        // must stay error-free and still echo the normalized plan.
        assert!(out.contains("BER 0.0%"), "{out}");
        assert!(out.contains("faults: seed=5"), "{out}");
    }

    #[test]
    fn adaptive_flag_accept_reject_matrix() {
        let a = Args::parse(&argv("robust --adaptive")).unwrap();
        assert_eq!(a.command, Command::Robust);
        assert!(a.adaptive);
        // A bare robust run is the static control arm.
        let a = Args::parse(&argv("robust --bits 16")).unwrap();
        assert!(!a.adaptive);
        // --adaptive is robust-only.
        for cmd in ["devices", "zoo", "l1", "faults", "noise", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --adaptive"))).unwrap_err();
            assert!(err.contains("--adaptive only applies"), "{cmd}: {err}");
        }
    }

    #[test]
    fn robust_static_arm_fails_under_the_cache_hog_and_says_so() {
        // Even with fault intensity 0, the constant-cache-hog co-runner
        // corrupts the static-threshold channel; the control arm must
        // report the failure honestly with a one-stage trace (the adaptive
        // arm's recovery is exercised by `integration_adaptive` and CI).
        let a =
            Args::parse(&argv("robust --bits 16 --faults seed=5,intensity=0,kinds=all")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("static link"), "{out}");
        assert!(out.contains("ABORTED"), "{out}");
        assert!(out.contains("static      [l1-sync] failed"), "escalation trace row: {out}");
        assert!(!out.contains("static BER 0.00%"), "{out}");
    }

    #[test]
    fn topology_flag_accept_reject_matrix() {
        const SPEC: &str = "devices=kepler+maxwell,link=0-1:lat=80:slot=8:lanes=4";
        // Accepted on the two commands that can drive a multi-GPU fabric.
        for cmd in ["nvlink", "robust"] {
            let a = Args::parse(&argv(&format!("{cmd} --topology {SPEC}"))).unwrap();
            assert_eq!(a.topology.as_deref(), Some(SPEC), "{cmd}");
        }
        // A bare nvlink run falls back to the dual-device default.
        let a = Args::parse(&argv("nvlink")).unwrap();
        assert_eq!(a.command, Command::Nvlink);
        assert_eq!(a.topology, None);
        assert_eq!(
            a.topology_spec().unwrap().to_spec(),
            "devices=kepler+kepler,link=0-1:lat=40:slot=4:lanes=2"
        );
        // The default respects --device aliases through the shared table.
        let a = Args::parse(&argv("nvlink --device M4000")).unwrap();
        assert!(
            a.topology_spec().unwrap().to_spec().starts_with("devices=maxwell+maxwell"),
            "{a:?}"
        );
        // Rejected everywhere else, mirroring the other flag validations.
        for cmd in ["devices", "zoo", "l1", "faults", "recon", "noise", "mitigations", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --topology {SPEC}"))).unwrap_err();
            assert!(err.contains("--topology only applies"), "{cmd}: {err}");
        }
        // Missing value and malformed specs fail at parse time.
        assert!(Args::parse(&argv("nvlink --topology")).is_err());
        for bad in [
            "devices=voodoo2+voodoo2,link=0-1",
            "devices=kepler+kepler,link=0-7",
            "devices=kepler+kepler,link=0-0",
            "link=0-1",
        ] {
            let err = Args::parse(&argv(&format!("nvlink --topology {bad}"))).unwrap_err();
            assert!(err.contains("invalid --topology spec"), "{bad}: {err}");
        }
        // A link-less topology parses but cannot host the channel: the
        // failure is a typed run-time error, not a panic.
        let a = Args::parse(&argv("nvlink --topology devices=kepler")).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("the topology has 0"), "{err}");
    }

    #[test]
    fn nvlink_command_round_trips_a_known_payload() {
        let a = Args::parse(&argv("nvlink --bits 16 --stats")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("topology: devices=kepler+kepler"), "{out}");
        assert!(out.contains("spy on device 0, trojan on device 1"), "{out}");
        assert!(out.contains("16 bits"), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
        assert!(out.contains("link transfers recorded"), "{out}");
        assert!(out.contains("engine:"), "{out}");
    }

    #[test]
    fn nvlink_honors_an_explicit_topology() {
        let a = Args::parse(&argv(
            "nvlink --bits 8 --topology devices=maxwell+maxwell,link=0-1:lat=120:lanes=4",
        ))
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("devices=maxwell+maxwell"), "{out}");
        assert!(out.contains("latency 120 cycles"), "{out}");
        assert!(out.contains("4 lanes"), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
    }

    #[test]
    fn nvlink_reports_saturation_as_a_typed_error() {
        let a = Args::parse(&argv(
            "nvlink --bits 8 --faults seed=2989,intensity=1,period=30000,burst=30000,kinds=link",
        ))
        .unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("saturated"), "{err}");
    }

    #[test]
    fn device_aliases_resolve() {
        for (alias, name) in
            [("fermi", "Tesla C2075"), ("K40C", "Tesla K40C"), ("quadro-m4000", "Quadro M4000")]
        {
            let mut a = Args::parse(&argv("devices")).unwrap();
            a.device = alias.to_string();
            assert_eq!(a.spec().unwrap().name, name);
        }
        let mut a = Args::parse(&argv("devices")).unwrap();
        a.device = "voodoo2".to_string();
        assert!(a.spec().is_err());
    }

    #[test]
    fn devices_and_help_reports() {
        let a = Args::parse(&argv("devices")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("Tesla K40C"));
        let a = Args::parse(&argv("help")).unwrap();
        assert!(run(&a).unwrap().contains("usage"));
    }

    #[test]
    fn recon_runs_end_to_end() {
        let a = Args::parse(&argv("recon --device kepler")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("leftover policy = true"), "{out}");
        assert!(out.contains("latency steps: 4"), "{out}");
    }

    #[test]
    fn chat_round_trips() {
        let a = Args::parse(&argv("chat hi")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("\"hi\""), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
        assert!(!out.contains("engine:"), "no counters without --stats: {out}");
    }

    #[test]
    fn stats_flag_appends_engine_counters() {
        let a = Args::parse(&argv("chat hi --stats")).unwrap();
        assert!(a.stats);
        let out = run(&a).unwrap();
        assert!(out.contains("engine: cycles:"), "{out}");
        assert!(out.contains("SM-steps:"), "{out}");
    }
}
