//! Library backing the `gpgpu-covert` command-line tool: argument parsing
//! and subcommand execution, kept in a library so the logic is testable.

#![deny(missing_docs)]

use gpgpu_covert::analytic::{default_engine_mode, AnalyticalModel, ChannelVerdict};
use gpgpu_covert::arena::{run_arena, ArenaConfig};
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_covert::colocation::{reverse_engineer_block_scheduler, reverse_engineer_warp_scheduler};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::linkmon::{AdaptiveLink, LinkEnvironment};
use gpgpu_covert::mitigations::{
    contention_detection_margin, evaluate_against_family, ChannelFamily,
};
use gpgpu_covert::noise::{run_sync_with_noise, NoiseKind};
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::parallel::ParallelSfuChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_sim::{DeviceTuning, EngineMode, LatencyTable};
use gpgpu_spec::{presets, DefenseSpec, DeviceSpec, TopologySpec};
use std::fmt::Write as _;

/// Usage text printed on argument errors and `help`.
pub const USAGE: &str = "\
usage: gpgpu-covert <command> [options]

commands:
  devices                     list the simulated GPU presets
  chat <message>              exfiltrate an ASCII message over the fastest channel
  zoo                         run every channel family once and summarize
  l1                          run the baseline L1 channel with event tracing
  recon                       reverse engineer the schedulers and caches
  noise                       run the channel under Rodinia-like interference
  mitigations                 evaluate the Section-9 defenses against every
                              channel family (three-state verdict per cell)
  faults                      sweep fault intensity: raw vs FEC vs ARQ framing
  robust                      transmit under a fault storm + cache-hog noise,
                              printing the link diagnostic / escalation trace
  nvlink                      run the cross-GPU NVLink channel over a topology
  arena                       attack/defense tournament: every channel family
                              plus the adaptive ladder vs every --defense
                              column, as a residual-bandwidth matrix
  characterize                extract the per-op latency table and per-family
                              analytical models from the cycle engine
                              (--out dumps the table; --table verifies a dump)
  sweep                       run a --request grid through the supervised sweep
                              service: content-addressed result cache, crash-safe
                              journal resume, typed per-cell outcome matrix

options:
  --device <fermi|kepler|maxwell|ampere>   target preset (default kepler)
  --bits <n>                        message length in bits (default 24)
  --exclusive                       enable exclusive co-location (noise command)
  --stats                           print cycle-engine counters after the run
  --trace-out <path>                write a Chrome-trace JSON of the run (l1 only)
  --profile                         print the contention profile (l1 only)
  --faults <spec>                   deterministic fault plan (faults/l1/robust/nvlink),
                                    e.g. seed=7,intensity=1,period=900000,burst=280000,set=2,kinds=evict+storm
  --adaptive                        enable the adaptive link layer (robust only):
                                    online calibration + degradation ladder
  --topology <spec>                 multi-GPU topology (nvlink/robust/arena/mitigations),
                                    e.g. devices=kepler+kepler,link=0-1:lat=40:slot=4:lanes=2
                                    (default: two of --device joined by one link)
  --defense <spec>                  deploy a defense wherever --faults is accepted, plus
                                    arena, e.g. partition=2,fuzz=4096 or none; repeatable
                                    (l1/robust/nvlink/faults compose repeated flags into
                                    one stacked defense; arena adds one matrix column each)
  --engine <dense|event|analytical> cycle engine for the l1 command, or the closed-form
                                    analytical fast path with a simulated cross-check
                                    (default: GPGPU_ENGINE, else event)
  --out <path>                      write the characterized latency table here
                                    (characterize only; default: stdout)
  --table <path>                    load a characterization dump, verify it round-trips
                                    (characterize only)
  --request <spec>                  sweep grid (sweep only; default `default`), e.g.
                                    device=kepler+fermi;family=l1+atomic;iters=4+20;bits=8
  --cache-dir <path>                content-addressed result cache directory (sweep only);
                                    also holds the run journal at <path>/journal.log
  --resume                          resume the journal in --cache-dir after an
                                    interrupted sweep (sweep only; requires --cache-dir)
  --chaos <spec>                    seeded chaos schedule for resilience drills
                                    (sweep only), e.g. seed=7,kills=2,stalls=1,corrupt=3
";

/// Which subcommand to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// List device presets.
    Devices,
    /// Send an ASCII message over the full-parallel synchronized channel.
    Chat(String),
    /// One-line summary of every channel family.
    Zoo,
    /// Baseline L1 channel with cycle-level event tracing.
    L1,
    /// Scheduler/cache reverse engineering.
    Recon,
    /// Interference experiment.
    Noise,
    /// Mitigation evaluation.
    Mitigations,
    /// Fault-intensity sweep: raw vs FEC vs CRC/ARQ framing.
    Faults,
    /// Adaptive-link robustness demo: transmit under a fault storm plus a
    /// constant-cache-hog co-runner and print the escalation trace.
    Robust,
    /// Cross-GPU NVLink channel over a (default or `--topology`) topology.
    Nvlink,
    /// Attack/defense tournament: every channel family plus the adaptive
    /// ladder against every `--defense` column, as a residual-bandwidth
    /// matrix.
    Arena,
    /// Extract (or verify) the analytical model's latency table from the
    /// cycle engine.
    Characterize,
    /// Supervised sweep service: run a grid request through the resilient
    /// job engine with caching, journaling and chaos drills.
    Sweep,
    /// Print usage.
    Help,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand.
    pub command: Command,
    /// Target device preset.
    pub device: String,
    /// Message bits for `zoo`.
    pub bits: usize,
    /// Exclusive co-location for `noise`.
    pub exclusive: bool,
    /// Print cycle-engine counters (`SimStats`) after the run.
    pub stats: bool,
    /// Write the run's Chrome-trace JSON here (`l1` only).
    pub trace_out: Option<String>,
    /// Print the per-SM/per-scheduler/per-set contention profile
    /// (`l1` only).
    pub profile: bool,
    /// Fault-plan spec string (`faults`/`l1`/`robust`), validated at parse
    /// time against [`gpgpu_sim::FaultPlan::from_spec`].
    pub faults: Option<String>,
    /// Run the adaptive link layer instead of the pinned static
    /// thresholds (`robust` only).
    pub adaptive: bool,
    /// Multi-GPU topology spec string (`nvlink`/`robust`/`arena`/
    /// `mitigations`), validated at parse time against
    /// [`gpgpu_spec::TopologySpec::from_spec`].
    pub topology: Option<String>,
    /// Defense spec strings (repeatable), validated at parse time against
    /// [`DefenseSpec::from_spec`]. Single-channel commands compose them
    /// into one stacked defense; `arena` turns each into a matrix column.
    pub defense: Vec<String>,
    /// Engine selection for `l1`, validated at parse time against
    /// [`EngineMode::from_str`]. `None` defers to the `GPGPU_ENGINE`
    /// environment variable (with a one-time warning on unknown values),
    /// then the event-driven default.
    pub engine: Option<EngineMode>,
    /// Output path for the `characterize` dump (stdout when absent).
    pub out: Option<String>,
    /// Characterization dump to load and round-trip-verify
    /// (`characterize` only).
    pub table: Option<String>,
    /// Sweep grid spec (`sweep` only), validated at parse time against
    /// [`gpgpu_spec::SweepRequest::from_spec`]; `None` means `default`.
    pub request: Option<String>,
    /// Result-cache directory (`sweep` only); also hosts the run journal.
    pub cache_dir: Option<String>,
    /// Resume the journal in `--cache-dir` (`sweep` only).
    pub resume: bool,
    /// Chaos schedule spec (`sweep` only), validated at parse time against
    /// [`gpgpu_serve::ChaosPlan::from_spec`].
    pub chaos: Option<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown commands, unknown
    /// options, or missing option values.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            command: Command::Help,
            device: "kepler".to_string(),
            bits: 24,
            exclusive: false,
            stats: false,
            trace_out: None,
            profile: false,
            faults: None,
            adaptive: false,
            topology: None,
            defense: Vec::new(),
            engine: None,
            out: None,
            table: None,
            request: None,
            cache_dir: None,
            resume: false,
            chaos: None,
        };
        let mut it = argv.iter().peekable();
        let cmd = it.next().ok_or("missing command")?;
        let mut positional: Vec<String> = Vec::new();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--device" => {
                    args.device = it.next().ok_or("--device needs a value")?.clone();
                }
                "--bits" => {
                    let v = it.next().ok_or("--bits needs a value")?;
                    args.bits = v.parse().map_err(|_| format!("invalid --bits value {v:?}"))?;
                }
                "--exclusive" => args.exclusive = true,
                "--stats" => args.stats = true,
                "--trace-out" => {
                    args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
                }
                "--profile" => args.profile = true,
                "--adaptive" => args.adaptive = true,
                "--faults" => {
                    let v = it.next().ok_or("--faults needs a spec")?;
                    gpgpu_sim::FaultPlan::from_spec(v)
                        .map_err(|e| format!("invalid --faults spec: {e}"))?;
                    args.faults = Some(v.clone());
                }
                "--topology" => {
                    let v = it.next().ok_or("--topology needs a spec")?;
                    TopologySpec::from_spec(v)
                        .map_err(|e| format!("invalid --topology spec: {e}"))?;
                    args.topology = Some(v.clone());
                }
                "--defense" => {
                    let v = it.next().ok_or("--defense needs a spec")?;
                    DefenseSpec::from_spec(v)
                        .map_err(|e| format!("invalid --defense spec: {e}"))?;
                    args.defense.push(v.clone());
                }
                "--engine" => {
                    let v = it.next().ok_or("--engine needs a value")?;
                    args.engine =
                        Some(v.parse().map_err(|e| format!("invalid --engine value: {e}"))?);
                }
                "--out" => {
                    args.out = Some(it.next().ok_or("--out needs a path")?.clone());
                }
                "--table" => {
                    args.table = Some(it.next().ok_or("--table needs a path")?.clone());
                }
                "--request" => {
                    let v = it.next().ok_or("--request needs a spec")?;
                    gpgpu_spec::SweepRequest::from_spec(v)
                        .map_err(|e| format!("invalid --request spec: {e}"))?;
                    args.request = Some(v.clone());
                }
                "--cache-dir" => {
                    args.cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone());
                }
                "--resume" => args.resume = true,
                "--chaos" => {
                    let v = it.next().ok_or("--chaos needs a spec")?;
                    gpgpu_serve::ChaosPlan::from_spec(v)
                        .map_err(|e| format!("invalid --chaos spec: {e}"))?;
                    args.chaos = Some(v.clone());
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown option {other:?}"));
                }
                other => positional.push(other.to_string()),
            }
        }
        args.command = match cmd.as_str() {
            "devices" => Command::Devices,
            "chat" => {
                let msg = positional.first().ok_or("chat needs a message argument")?;
                Command::Chat(msg.clone())
            }
            "zoo" => Command::Zoo,
            "l1" => Command::L1,
            "recon" => Command::Recon,
            "noise" => Command::Noise,
            "mitigations" => Command::Mitigations,
            "faults" => Command::Faults,
            "robust" => Command::Robust,
            "nvlink" => Command::Nvlink,
            "arena" => Command::Arena,
            "characterize" => Command::Characterize,
            "sweep" => Command::Sweep,
            "help" | "--help" | "-h" => Command::Help,
            other => return Err(format!("unknown command {other:?}")),
        };
        if args.bits == 0 {
            return Err("--bits must be positive".to_string());
        }
        if args.command != Command::L1 && (args.trace_out.is_some() || args.profile) {
            return Err("--trace-out/--profile only apply to the l1 command".to_string());
        }
        if !matches!(
            args.command,
            Command::Faults | Command::L1 | Command::Robust | Command::Nvlink
        ) && args.faults.is_some()
        {
            return Err(
                "--faults only applies to the faults, l1, robust, and nvlink commands".to_string()
            );
        }
        if args.command != Command::Robust && args.adaptive {
            return Err("--adaptive only applies to the robust command".to_string());
        }
        if !matches!(
            args.command,
            Command::Nvlink | Command::Robust | Command::Arena | Command::Mitigations
        ) && args.topology.is_some()
        {
            return Err(
                "--topology only applies to the nvlink, robust, arena, and mitigations commands"
                    .to_string(),
            );
        }
        if !matches!(
            args.command,
            Command::Faults | Command::L1 | Command::Robust | Command::Nvlink | Command::Arena
        ) && !args.defense.is_empty()
        {
            return Err(
                "--defense only applies to the faults, l1, robust, nvlink, and arena commands"
                    .to_string(),
            );
        }
        if args.command != Command::L1 && args.engine.is_some() {
            return Err("--engine only applies to the l1 command".to_string());
        }
        if args.command != Command::Characterize && (args.out.is_some() || args.table.is_some()) {
            return Err("--out/--table only apply to the characterize command".to_string());
        }
        if args.out.is_some() && args.table.is_some() {
            return Err("--out and --table are mutually exclusive".to_string());
        }
        if args.command != Command::Sweep
            && (args.request.is_some()
                || args.cache_dir.is_some()
                || args.resume
                || args.chaos.is_some())
        {
            return Err("--request/--cache-dir/--resume/--chaos only apply to the sweep command"
                .to_string());
        }
        if args.resume && args.cache_dir.is_none() {
            return Err("--resume needs --cache-dir (the journal lives there)".to_string());
        }
        Ok(args)
    }

    /// Resolves the device preset through the shared alias table.
    ///
    /// # Errors
    ///
    /// Unknown device names.
    pub fn spec(&self) -> Result<DeviceSpec, String> {
        presets::by_name(&self.device).ok_or_else(|| {
            format!("unknown device {:?} (fermi|kepler|maxwell|ampere)", self.device)
        })
    }

    /// Resolves the multi-GPU topology: the `--topology` spec when given,
    /// otherwise two copies of `--device` joined by one default link.
    ///
    /// # Errors
    ///
    /// Unknown device names (the spec string itself was validated at parse
    /// time).
    pub fn topology_spec(&self) -> Result<TopologySpec, String> {
        match &self.topology {
            Some(s) => TopologySpec::from_spec(s).map_err(|e| e.to_string()),
            None => TopologySpec::dual(&self.device).map_err(|e| e.to_string()),
        }
    }

    /// Composes every `--defense` flag into one stacked defense (the
    /// semantics for the single-channel commands). No flags means no
    /// defense.
    ///
    /// # Errors
    ///
    /// Two flags setting the same knob to different parameters (the spec
    /// strings themselves were validated at parse time).
    pub fn defense_spec(&self) -> Result<DefenseSpec, String> {
        self.defense.iter().try_fold(DefenseSpec::none(), |acc, s| {
            let d = DefenseSpec::from_spec(s).map_err(|e| e.to_string())?;
            acc.compose(&d).map_err(|e| format!("conflicting --defense flags: {e}"))
        })
    }

    /// Each `--defense` flag as its own defense (the matrix columns of the
    /// `arena` command).
    ///
    /// # Errors
    ///
    /// Propagates spec errors (cannot normally happen: flags were validated
    /// at parse time).
    pub fn defense_columns(&self) -> Result<Vec<DefenseSpec>, String> {
        self.defense.iter().map(|s| DefenseSpec::from_spec(s).map_err(|e| e.to_string())).collect()
    }
}

/// Executes the parsed command, returning the report text.
///
/// # Errors
///
/// Propagates channel/simulator failures as strings.
pub fn run(args: &Args) -> Result<String, String> {
    let mut out = String::new();
    // Cycle-engine counters accumulated across every transmission the
    // command performs; printed as a footer under `--stats`.
    let mut engine = gpgpu_sim::SimStats::default();
    match &args.command {
        Command::Help => out.push_str(USAGE),
        Command::Devices => {
            for d in presets::all() {
                let _ = writeln!(
                    out,
                    "{:<14} {:?}: {} SMs x {} schedulers, {} MHz, L1 {} B / L2 {} B",
                    d.name,
                    d.architecture,
                    d.num_sms,
                    d.sm.num_warp_schedulers,
                    d.clock_hz / 1_000_000,
                    d.const_l1.geometry.size_bytes(),
                    d.const_l2.geometry.size_bytes(),
                );
            }
        }
        Command::Chat(text) => {
            let spec = args.spec()?;
            let msg = Message::from_bytes(text.as_bytes());
            let data_sets = (spec.const_l1.geometry.num_sets() - 2).min(6) as u32;
            let ch = SyncChannel::new(spec.clone())
                .with_data_sets(data_sets)
                .map_err(|e| e.to_string())?
                .with_parallel_sms(spec.num_sms)
                .map_err(|e| e.to_string())?;
            let o = ch.transmit(&msg).map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "sent {} bits over {} ({} data sets x {} SMs)",
                msg.len(),
                spec.name,
                data_sets,
                spec.num_sms
            );
            let _ =
                writeln!(out, "received: {:?}", String::from_utf8_lossy(&o.received.to_bytes()));
            let _ =
                writeln!(out, "bandwidth: {:.0} Kbps, BER {:.2}%", o.bandwidth_kbps, o.ber * 100.0);
        }
        Command::Zoo => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC11);
            let mut row = |name: &str, o: gpgpu_covert::ChannelOutcome| {
                engine.merge(&o.stats);
                let _ = writeln!(
                    out,
                    "  {name:<32} {:>9.1} Kbps   BER {:>5.1}%",
                    o.bandwidth_kbps,
                    o.ber * 100.0
                );
            };
            row(
                "L1 cache (baseline)",
                L1Channel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "L2 cache (cross-SM)",
                L2Channel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "SFU __sinf",
                SfuChannel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            for s in AtomicScenario::ALL {
                row(
                    &format!("atomic: {}", s.label()),
                    AtomicChannel::new(spec.clone(), s)
                        .transmit(&msg)
                        .map_err(|e| e.to_string())?,
                );
            }
            row(
                "L1 synchronized",
                SyncChannel::new(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "L2 synchronized",
                SyncChannel::new_l2(spec.clone()).transmit(&msg).map_err(|e| e.to_string())?,
            );
            row(
                "SFU parallel (sched x SMs)",
                ParallelSfuChannel::new(spec.clone())
                    .with_parallel_sms(spec.num_sms)
                    .map_err(|e| e.to_string())?
                    .transmit(&msg)
                    .map_err(|e| e.to_string())?,
            );
        }
        Command::L1 => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC14);
            let plan = args.faults.as_deref().map(gpgpu_sim::FaultPlan::from_spec).transpose()?;
            let defense = args.defense_spec()?;
            let engine_mode = args.engine.unwrap_or_else(default_engine_mode);
            if engine_mode == EngineMode::Analytical {
                if plan.is_some() || !defense.is_none() || args.trace_out.is_some() || args.profile
                {
                    return Err("the analytical engine predicts the clean channel only; \
                                --faults/--defense/--trace-out/--profile need a cycle engine"
                        .to_string());
                }
                return run_l1_analytical(&spec, &msg);
            }
            let mut tuning = DeviceTuning::from_defense(&defense);
            tuning.engine = engine_mode;
            let mut ch = L1Channel::new(spec.clone()).with_tuning(tuning);
            if let Some(p) = plan {
                ch = ch.with_faults(p);
            }
            let (o, capture) = ch
                .transmit_traced(&msg, gpgpu_sim::DEFAULT_TRACE_CAPACITY)
                .map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "L1 channel on {}: {} bits, {:.1} Kbps, BER {:.1}%",
                spec.name,
                msg.len(),
                o.bandwidth_kbps,
                o.ber * 100.0
            );
            if let Some(p) = plan {
                let _ = writeln!(out, "faults: {}", p.to_spec());
            }
            if !defense.is_none() {
                let _ = writeln!(out, "defense: {}", defense.to_spec());
            }
            let _ = writeln!(
                out,
                "trace: {} events recorded, {} dropped (ring capacity {})",
                capture.events.len(),
                capture.events.dropped(),
                capture.events.capacity()
            );
            if let Some(path) = &args.trace_out {
                let json = capture.chrome_trace_json();
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
                let _ = writeln!(out, "wrote Chrome trace ({} bytes) to {path}", json.len());
            }
            if args.profile {
                out.push_str(&gpgpu_bench::report::render_contention_profile(
                    &capture.records(),
                    &capture.kernel_names,
                ));
            }
        }
        Command::Recon => {
            let spec = args.spec()?;
            let b = reverse_engineer_block_scheduler(&spec).map_err(|e| e.to_string())?;
            let w = reverse_engineer_warp_scheduler(&spec).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "device: {}", spec.name);
            let _ = writeln!(out, "block scheduler: leftover policy = {}", b.is_leftover_policy());
            let _ = writeln!(
                out,
                "  round robin {}, leftover co-location {}, queues when full {}",
                b.round_robin, b.leftover_colocation, b.queues_when_full
            );
            let _ = writeln!(out, "warp scheduler: assignment {:?}", w.assignment);
            let _ = writeln!(
                out,
                "  schedulers inferred from latency steps: {}",
                w.inferred_num_schedulers
            );
        }
        Command::Noise => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC12);
            let exp =
                run_sync_with_noise(&spec, &msg, &[NoiseKind::ConstantCacheHog], args.exclusive)
                    .map_err(|e| e.to_string())?;
            engine.merge(&exp.outcome.stats);
            let _ = writeln!(
                out,
                "constant-cache noise, exclusive co-location = {}: noise co-located = {}, BER = {:.1}%",
                args.exclusive,
                exp.noise_overlapped,
                exp.outcome.ber * 100.0
            );
        }
        Command::Faults => {
            // The sweep is pinned to the calibrated K40C sync channel; the
            // spec only overrides the fault plan, not the device.
            let base = match &args.faults {
                Some(s) => gpgpu_sim::FaultPlan::from_spec(s)?,
                None => gpgpu_bench::data::fault_sweep_plan(1.0),
            };
            let defense = args.defense_spec()?;
            let intensities = [0.0, 0.5, 1.0];
            let pts = gpgpu_bench::data::fault_sweep_defended(
                args.bits,
                &intensities,
                base,
                DeviceTuning::from_defense(&defense),
            );
            let _ = writeln!(
                out,
                "fault sweep: {} bits over the synchronized L1 channel, plan {}",
                args.bits,
                base.to_spec()
            );
            if !defense.is_none() {
                let _ = writeln!(out, "defense: {}", defense.to_spec());
            }
            let _ = writeln!(
                out,
                "{:>9}  {:>8} {:>8} {:>8}  {:>12} {:>12} {:>12}",
                "intensity", "raw BER", "FEC BER", "ARQ BER", "raw Kbps", "FEC Kbps", "ARQ Kbps"
            );
            for p in &pts {
                let _ = writeln!(
                    out,
                    "{:>9.2}  {:>7.1}% {:>7.1}% {:>7.1}%  {:>12.1} {:>12.1} {:>12.1}",
                    p.intensity,
                    p.raw_ber * 100.0,
                    p.fec_ber * 100.0,
                    p.arq_ber * 100.0,
                    p.raw_goodput_kbps,
                    p.fec_goodput_kbps,
                    p.arq_goodput_kbps,
                );
            }
            out.push_str(
                "note: fault bursts flip multiple bits per Hamming codeword, so FEC can\n\
                 trail the raw channel under heavy storms; ARQ retransmits instead.\n",
            );
        }
        Command::Robust => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC15);
            let plan = match &args.faults {
                Some(s) => gpgpu_sim::FaultPlan::from_spec(s)?,
                None => gpgpu_bench::data::fault_sweep_plan(1.0),
            };
            let defense = args.defense_spec()?;
            let mut env = LinkEnvironment::clean()
                .with_faults(plan)
                .with_noise(vec![NoiseKind::ConstantCacheHog], 40 + 30 * args.bits as u64)
                .with_defense(&defense);
            if let Some(s) = &args.topology {
                // Arms the ladder's terminal nvlink rung.
                env = env.with_topology(TopologySpec::from_spec(s).map_err(|e| e.to_string())?);
            }
            let link = AdaptiveLink::new(spec.clone()).with_env(env);
            let mode = if args.adaptive { "adaptive" } else { "static" };
            let _ = writeln!(
                out,
                "{mode} link on {}: {} bits under fault storm {} + constant-cache hog",
                spec.name,
                args.bits,
                plan.to_spec()
            );
            if !defense.is_none() {
                let _ = writeln!(out, "defense: {}", defense.to_spec());
            }
            let o = if args.adaptive {
                link.transmit(&msg).map_err(|e| e.to_string())?
            } else {
                link.transmit_static(&msg).map_err(|e| e.to_string())?
            };
            out.push_str(&o.diagnostic.to_string());
            let _ = writeln!(out, "{mode} BER {:.2}%", o.diagnostic.ber * 100.0);
        }
        Command::Nvlink => {
            let topo = args.topology_spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC16);
            let defense = args.defense_spec()?;
            let mut ch = NvlinkChannel::new(topo)
                .map_err(|e| e.to_string())?
                .with_tuning(DeviceTuning::from_defense(&defense));
            if let Some(s) = &args.faults {
                ch = ch.with_faults(gpgpu_sim::FaultPlan::from_spec(s)?);
            }
            if !defense.is_none() {
                let _ = writeln!(out, "defense: {}", defense.to_spec());
            }
            let (spy, trojan) = ch.endpoints();
            let link = ch.topology().links[0];
            let _ = writeln!(out, "topology: {}", ch.topology().to_spec());
            let _ = writeln!(
                out,
                "link 0: spy on device {spy}, trojan on device {trojan} \
                 (latency {} cycles, slot {}, {} lanes)",
                link.latency_cycles, link.slot_cycles, link.lanes
            );
            let (o, trace) = ch.transmit_traced(&msg).map_err(|e| e.to_string())?;
            engine.merge(&o.stats);
            let _ = writeln!(
                out,
                "nvlink channel: {} bits, {:.1} Kbps, BER {:.2}%",
                msg.len(),
                o.bandwidth_kbps,
                o.ber * 100.0
            );
            let _ = writeln!(out, "trace: {} link transfers recorded", trace.len());
        }
        Command::Mitigations => {
            let spec = args.spec()?;
            let msg = Message::pseudo_random(args.bits, 0xC13);
            let topology = args.topology_spec()?;
            let min_ber = 0.2;
            let _ = writeln!(
                out,
                "defense evaluation on {}: {}-bit message, effective at BER >= {:.0}%",
                spec.name,
                args.bits,
                min_ber * 100.0
            );
            for d in
                ["partition=2", "randsched=0xd1ce", "fuzz=4096", "partition=2,randsched=0xd1ce"]
            {
                let defense = DefenseSpec::from_spec(d).map_err(|e| e.to_string())?;
                let _ = writeln!(out, "{defense}:");
                for family in ChannelFamily::ALL {
                    let r = evaluate_against_family(&spec, family, &defense, &msg, Some(&topology))
                        .map_err(|e| e.to_string())?;
                    engine.merge(&r.baseline.stats);
                    engine.merge(&r.mitigated.stats);
                    let _ = writeln!(
                        out,
                        "  {:<12} BER {:>5.1}% -> {:>5.1}%  [{}]",
                        family.label(),
                        r.baseline.ber * 100.0,
                        r.mitigated.ber * 100.0,
                        r.verdict(min_ber)
                    );
                }
            }
            let (chan, benign) =
                contention_detection_margin(&spec, &msg).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "contention detector: channel score {chan} vs benign {benign}");
        }
        Command::Arena => {
            let spec = args.spec()?;
            let mut config =
                ArenaConfig::new(spec).with_bits(args.bits).with_topology(args.topology_spec()?);
            if !args.defense.is_empty() {
                config = config.with_defenses(args.defense_columns()?);
            }
            let report = run_arena(&config).map_err(|e| e.to_string())?;
            out.push_str(&report.render());
            let escapes = report.fallback_escapes();
            if escapes.is_empty() {
                out.push_str("no defense column was escaped via family fallback\n");
            }
            for cell in escapes {
                let _ = writeln!(
                    out,
                    "adaptive attacker escaped `{}` via fallback to {} \
                     ({:.2} kb/s residual, BER {:.1}%)",
                    cell.defense.to_spec(),
                    cell.final_family.as_deref().unwrap_or("?"),
                    cell.residual_bandwidth_kbps,
                    cell.ber * 100.0
                );
            }
        }
        Command::Characterize => match &args.table {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read table {path}: {e}"))?;
                let table = LatencyTable::from_spec(&text).map_err(|e| e.to_string())?;
                let reparsed =
                    LatencyTable::from_spec(&table.to_spec()).map_err(|e| e.to_string())?;
                if reparsed != table {
                    return Err(format!("table {path} does not round-trip through to_spec"));
                }
                let _ = writeln!(
                    out,
                    "loaded latency table for {}: {} op classes, {} families",
                    table.device,
                    table.ops().count(),
                    table.families().count()
                );
                out.push_str("round trip: ok\n");
            }
            None => {
                let spec = args.spec()?;
                let mut model = AnalyticalModel::characterize(&spec).map_err(|e| e.to_string())?;
                model.characterize_nvlink(&args.topology_spec()?).map_err(|e| e.to_string())?;
                let table = model.table();
                let _ = writeln!(
                    out,
                    "characterized {} from the cycle engine: {} op classes, {} families",
                    table.device,
                    table.ops().count(),
                    table.families().count()
                );
                let text = table.to_spec();
                match &args.out {
                    Some(path) => {
                        std::fs::write(path, &text)
                            .map_err(|e| format!("cannot write table to {path}: {e}"))?;
                        let _ =
                            writeln!(out, "wrote latency table ({} bytes) to {path}", text.len());
                    }
                    None => out.push_str(&text),
                }
            }
        },
        Command::Sweep => {
            let request =
                gpgpu_spec::SweepRequest::from_spec(args.request.as_deref().unwrap_or("default"))
                    .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "sweep request: {}", request.to_spec());
            let mut service = gpgpu_serve::SweepService::new(request).map_err(|e| e.to_string())?;
            if let Some(dir) = &args.cache_dir {
                service = service.with_cache_dir(dir).map_err(|e| e.to_string())?;
                let journal = std::path::Path::new(dir).join("journal.log");
                service = service.with_journal(journal, args.resume);
                let _ = writeln!(
                    out,
                    "cache: {dir} (journal {})",
                    if args.resume { "resumed" } else { "fresh" }
                );
            }
            if let Some(spec) = &args.chaos {
                let chaos = gpgpu_serve::ChaosPlan::from_spec(spec)?;
                service = service
                    .with_chaos(chaos)
                    .with_max_attempts(chaos.attempts_to_converge())
                    .with_backoff_base_ms(0);
                let _ = writeln!(
                    out,
                    "chaos: {} (attempt budget {})",
                    chaos,
                    chaos.attempts_to_converge()
                );
            }
            let matrix = service.run().map_err(|e| e.to_string())?;
            out.push_str(&matrix.render());
        }
    }
    if args.stats {
        let _ = writeln!(out, "engine: {engine}");
    }
    Ok(out)
}

/// The `l1 --engine analytical` path: characterize the L1 family from the
/// cycle engine, predict the transmission in closed form, then run one
/// simulated cross-check and report whether the works/dead verdicts agree
/// (the line CI greps for).
fn run_l1_analytical(spec: &DeviceSpec, msg: &Message) -> Result<String, String> {
    let mut out = String::new();
    let model = AnalyticalModel::characterize_families(spec, &["l1"]).map_err(|e| e.to_string())?;
    let ch = L1Channel::new(spec.clone());
    let knob = ch.iterations as f64;
    let pred = model.predict("l1", knob, msg).map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "L1 channel on {} (analytical): {} bits at {} iterations/bit, \
         predicted {:.1} Kbps, BER {:.1}% [{}]",
        spec.name,
        msg.len(),
        ch.iterations,
        pred.bandwidth_kbps,
        pred.ber * 100.0,
        pred.verdict.label()
    );
    let table = model.table();
    let _ = writeln!(
        out,
        "model: cycles/bit = {:.1} + {:.1} x iterations (extracted, no cycle loop at predict \
         time)",
        table.family("l1").map_or(0.0, |m| m.base),
        table.family("l1").map_or(0.0, |m| m.slope)
    );
    let sim = ch.transmit(msg).map_err(|e| e.to_string())?;
    let sim_verdict = ChannelVerdict::from_ber(sim.ber);
    let _ = writeln!(
        out,
        "simulated cross-check (event engine): {:.1} Kbps, BER {:.1}% [{}]",
        sim.bandwidth_kbps,
        sim.ber * 100.0,
        sim_verdict.label()
    );
    let _ = writeln!(
        out,
        "verdict agreement: {}",
        if pred.verdict == sim_verdict { "yes" } else { "NO" }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_commands_and_options() {
        let a = Args::parse(&argv("zoo --device fermi --bits 8")).unwrap();
        assert_eq!(a.command, Command::Zoo);
        assert_eq!(a.device, "fermi");
        assert_eq!(a.bits, 8);

        let a = Args::parse(&argv("chat hello --device maxwell")).unwrap();
        assert_eq!(a.command, Command::Chat("hello".to_string()));

        let a = Args::parse(&argv("noise --exclusive")).unwrap();
        assert!(a.exclusive);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&argv("frobnicate")).is_err());
        assert!(Args::parse(&argv("zoo --bits")).is_err());
        assert!(Args::parse(&argv("zoo --bits zero")).is_err());
        assert!(Args::parse(&argv("zoo --bits 0")).is_err());
        assert!(Args::parse(&argv("zoo --wat")).is_err());
        assert!(Args::parse(&argv("chat")).is_err());
        // Tracing flags are l1-only.
        assert!(Args::parse(&argv("l1 --trace-out")).is_err());
        assert!(Args::parse(&argv("zoo --trace-out t.json")).is_err());
        assert!(Args::parse(&argv("chat hi --profile")).is_err());
    }

    #[test]
    fn parses_l1_tracing_flags() {
        let a = Args::parse(&argv("l1 --trace-out t.json --profile --bits 4")).unwrap();
        assert_eq!(a.command, Command::L1);
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert!(a.profile);
        assert_eq!(a.bits, 4);
        // Tracing is optional; a bare l1 run is fine.
        let a = Args::parse(&argv("l1")).unwrap();
        assert_eq!(a.trace_out, None);
        assert!(!a.profile);
    }

    #[test]
    fn l1_writes_chrome_trace_and_profile() {
        let path = std::env::temp_dir().join("gpgpu_cli_l1_trace_test.json");
        let path_s = path.to_str().unwrap().to_string();
        let mut a = Args::parse(&argv("l1 --profile --bits 4")).unwrap();
        a.trace_out = Some(path_s.clone());
        let out = run(&a).unwrap();
        assert!(out.contains("L1 channel"), "{out}");
        assert!(out.contains("events recorded"), "{out}");
        assert!(out.contains("wrote Chrome trace"), "{out}");
        assert!(out.contains("contention profile"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with("{\"displayTimeUnit\""), "{}", &json[..60.min(json.len())]);
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"ph\":\"b\"") && json.contains("\"ph\":\"e\""), "block spans");
    }

    #[test]
    fn faults_flag_accept_reject_matrix() {
        const SPEC: &str = "seed=7,intensity=1,period=900000,burst=280000,set=2,kinds=evict+storm";
        // Accepted on the commands that run a faultable channel.
        for cmd in ["faults", "l1", "nvlink"] {
            let a = Args::parse(&argv(&format!("{cmd} --faults {SPEC}"))).unwrap();
            assert_eq!(a.faults.as_deref(), Some(SPEC), "{cmd}");
        }
        // A bare faults command falls back to the calibrated built-in plan.
        let a = Args::parse(&argv("faults")).unwrap();
        assert_eq!(a.command, Command::Faults);
        assert_eq!(a.faults, None);
        // Accepted on robust too (the adaptive-link demo).
        let a = Args::parse(&argv(&format!("robust --faults {SPEC}"))).unwrap();
        assert_eq!(a.faults.as_deref(), Some(SPEC));
        // Rejected everywhere else, mirroring the tracing-flag validation.
        for cmd in ["devices", "zoo", "recon", "noise", "mitigations", "help", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --faults {SPEC}"))).unwrap_err();
            assert!(err.contains("--faults only applies"), "{cmd}: {err}");
        }
        // Missing value and malformed specs fail at parse time.
        assert!(Args::parse(&argv("faults --faults")).is_err());
        let err = Args::parse(&argv("faults --faults seed=banana")).unwrap_err();
        assert!(err.contains("invalid --faults spec"), "{err}");
        assert!(Args::parse(&argv("l1 --faults kinds=frobnicate")).is_err());
        assert!(Args::parse(&argv("faults --faults intensity=2.0")).is_err());
    }

    #[test]
    fn faults_command_reports_the_sweep() {
        let a = Args::parse(&argv("faults --bits 48")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("fault sweep: 48 bits"), "{out}");
        assert!(out.contains("intensity"), "{out}");
        // Header + one row per intensity point.
        assert_eq!(out.matches("Kbps").count(), 3, "{out}");
        assert_eq!(out.lines().filter(|l| l.trim_start().starts_with('0')).count(), 2, "{out}");
        assert!(out.contains("ARQ retransmits instead"), "{out}");
    }

    #[test]
    fn faults_command_honors_a_custom_plan() {
        let a =
            Args::parse(&argv("faults --bits 16 --faults seed=9,intensity=1,kinds=evict")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("plan seed=9"), "{out}");
        assert!(out.contains("kinds=evict"), "{out}");
    }

    #[test]
    fn l1_accepts_a_fault_plan_and_echoes_it() {
        let a = Args::parse(&argv("l1 --bits 8 --faults seed=5,intensity=0,kinds=all")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("L1 channel"), "{out}");
        // Intensity 0 installs the hooks without firing a fault: the run
        // must stay error-free and still echo the normalized plan.
        assert!(out.contains("BER 0.0%"), "{out}");
        assert!(out.contains("faults: seed=5"), "{out}");
    }

    #[test]
    fn adaptive_flag_accept_reject_matrix() {
        let a = Args::parse(&argv("robust --adaptive")).unwrap();
        assert_eq!(a.command, Command::Robust);
        assert!(a.adaptive);
        // A bare robust run is the static control arm.
        let a = Args::parse(&argv("robust --bits 16")).unwrap();
        assert!(!a.adaptive);
        // --adaptive is robust-only.
        for cmd in ["devices", "zoo", "l1", "faults", "noise", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --adaptive"))).unwrap_err();
            assert!(err.contains("--adaptive only applies"), "{cmd}: {err}");
        }
    }

    #[test]
    fn robust_static_arm_fails_under_the_cache_hog_and_says_so() {
        // Even with fault intensity 0, the constant-cache-hog co-runner
        // corrupts the static-threshold channel; the control arm must
        // report the failure honestly with a one-stage trace (the adaptive
        // arm's recovery is exercised by `integration_adaptive` and CI).
        let a =
            Args::parse(&argv("robust --bits 16 --faults seed=5,intensity=0,kinds=all")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("static link"), "{out}");
        assert!(out.contains("ABORTED"), "{out}");
        assert!(out.contains("static      [l1-sync] failed"), "escalation trace row: {out}");
        assert!(!out.contains("static BER 0.00%"), "{out}");
    }

    #[test]
    fn topology_flag_accept_reject_matrix() {
        const SPEC: &str = "devices=kepler+maxwell,link=0-1:lat=80:slot=8:lanes=4";
        // Accepted on every command that can drive a multi-GPU fabric.
        for cmd in ["nvlink", "robust", "arena", "mitigations"] {
            let a = Args::parse(&argv(&format!("{cmd} --topology {SPEC}"))).unwrap();
            assert_eq!(a.topology.as_deref(), Some(SPEC), "{cmd}");
        }
        // A bare nvlink run falls back to the dual-device default.
        let a = Args::parse(&argv("nvlink")).unwrap();
        assert_eq!(a.command, Command::Nvlink);
        assert_eq!(a.topology, None);
        assert_eq!(
            a.topology_spec().unwrap().to_spec(),
            "devices=kepler+kepler,link=0-1:lat=40:slot=4:lanes=2"
        );
        // The default respects --device aliases through the shared table.
        let a = Args::parse(&argv("nvlink --device M4000")).unwrap();
        assert!(
            a.topology_spec().unwrap().to_spec().starts_with("devices=maxwell+maxwell"),
            "{a:?}"
        );
        // Rejected everywhere else, mirroring the other flag validations.
        for cmd in ["devices", "zoo", "l1", "faults", "recon", "noise", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --topology {SPEC}"))).unwrap_err();
            assert!(err.contains("--topology only applies"), "{cmd}: {err}");
        }
        // Missing value and malformed specs fail at parse time.
        assert!(Args::parse(&argv("nvlink --topology")).is_err());
        for bad in [
            "devices=voodoo2+voodoo2,link=0-1",
            "devices=kepler+kepler,link=0-7",
            "devices=kepler+kepler,link=0-0",
            "link=0-1",
        ] {
            let err = Args::parse(&argv(&format!("nvlink --topology {bad}"))).unwrap_err();
            assert!(err.contains("invalid --topology spec"), "{bad}: {err}");
        }
        // A link-less topology parses but cannot host the channel: the
        // failure is a typed run-time error, not a panic.
        let a = Args::parse(&argv("nvlink --topology devices=kepler")).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("the topology has 0"), "{err}");
    }

    #[test]
    fn defense_flag_accept_reject_matrix() {
        const SPEC: &str = "partition=2,fuzz=4096";
        // Accepted anywhere --faults is, plus arena.
        for cmd in ["faults", "l1", "robust", "nvlink", "arena"] {
            let a = Args::parse(&argv(&format!("{cmd} --defense {SPEC}"))).unwrap();
            assert_eq!(a.defense, vec![SPEC.to_string()], "{cmd}");
        }
        // A bare command deploys no defense.
        let a = Args::parse(&argv("l1")).unwrap();
        assert!(a.defense.is_empty());
        assert!(a.defense_spec().unwrap().is_none());
        // Repeatable: single-channel commands compose the flags into one
        // stacked defense (canonical component order), arena keeps columns.
        let a = Args::parse(&argv("l1 --defense fuzz=4096 --defense partition=2")).unwrap();
        assert_eq!(a.defense_spec().unwrap().to_spec(), "partition=2,fuzz=4096");
        let a = Args::parse(&argv("arena --defense partition=2 --defense fuzz=4096")).unwrap();
        assert_eq!(a.defense_columns().unwrap().len(), 2);
        // Same knob, different parameters: a typed composition error.
        let a = Args::parse(&argv("l1 --defense partition=2 --defense partition=4")).unwrap();
        let err = a.defense_spec().unwrap_err();
        assert!(err.contains("conflicting --defense flags"), "{err}");
        // Rejected everywhere else, mirroring the other flag validations.
        for cmd in ["devices", "zoo", "recon", "noise", "mitigations", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --defense {SPEC}"))).unwrap_err();
            assert!(err.contains("--defense only applies"), "{cmd}: {err}");
        }
        // Missing value and malformed specs fail at parse time.
        assert!(Args::parse(&argv("l1 --defense")).is_err());
        for bad in ["partition=1", "fuzz=banana", "wat=3", "partition=2,partition=2"] {
            let err = Args::parse(&argv(&format!("l1 --defense {bad}"))).unwrap_err();
            assert!(err.contains("invalid --defense spec"), "{bad}: {err}");
        }
    }

    #[test]
    fn l1_defense_corrupts_the_channel_and_echoes_the_spec() {
        let a = Args::parse(&argv("l1 --bits 8 --defense partition=2")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("defense: partition=2"), "{out}");
        assert!(!out.contains("BER 0.0%"), "partitioning must corrupt the L1 channel: {out}");
        // No defense, no echo line.
        let a = Args::parse(&argv("l1 --bits 8")).unwrap();
        assert!(!run(&a).unwrap().contains("defense:"));
    }

    #[test]
    fn mitigations_matrix_covers_all_families_with_verdicts() {
        let a = Args::parse(&argv("mitigations --bits 8")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("defense evaluation"), "{out}");
        assert!(out.contains("8-bit message"), "--bits must be honored: {out}");
        // Every family appears once per defense block (4 defenses).
        for fam in ["l1", "sync", "parallel-sfu", "atomic", "nvlink"] {
            assert_eq!(
                out.lines().filter(|l| l.trim_start().starts_with(fam)).count(),
                4,
                "{fam}: {out}"
            );
        }
        // The three-state verdict distinguishes working defenses from
        // defenses that merely faced an already-broken channel.
        assert!(out.contains("[effective]"), "{out}");
        assert!(out.contains("[ineffective]"), "{out}");
        assert!(out.contains("partition=2,randsched=0xd1ce"), "composed defense: {out}");
        assert!(out.contains("contention detector"), "{out}");
    }

    #[test]
    fn arena_reports_the_matrix_and_the_fallback_escape() {
        let a = Args::parse(&argv("arena --bits 8 --defense partition=2")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("residual bandwidth"), "{out}");
        for row in ["l1", "sync", "parallel-sfu", "atomic", "nvlink", "adaptive"] {
            assert!(out.lines().any(|l| l.starts_with(row)), "{row}: {out}");
        }
        // Partitioning alone cannot contain the adaptive attacker: it hops
        // to an unprotected family and the arena says so.
        assert!(out.contains("escaped `partition=2` via fallback to"), "{out}");
    }

    #[test]
    fn nvlink_command_round_trips_a_known_payload() {
        let a = Args::parse(&argv("nvlink --bits 16 --stats")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("topology: devices=kepler+kepler"), "{out}");
        assert!(out.contains("spy on device 0, trojan on device 1"), "{out}");
        assert!(out.contains("16 bits"), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
        assert!(out.contains("link transfers recorded"), "{out}");
        assert!(out.contains("engine:"), "{out}");
    }

    #[test]
    fn nvlink_honors_an_explicit_topology() {
        let a = Args::parse(&argv(
            "nvlink --bits 8 --topology devices=maxwell+maxwell,link=0-1:lat=120:lanes=4",
        ))
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("devices=maxwell+maxwell"), "{out}");
        assert!(out.contains("latency 120 cycles"), "{out}");
        assert!(out.contains("4 lanes"), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
    }

    #[test]
    fn nvlink_reports_saturation_as_a_typed_error() {
        let a = Args::parse(&argv(
            "nvlink --bits 8 --faults seed=2989,intensity=1,period=30000,burst=30000,kinds=link",
        ))
        .unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("saturated"), "{err}");
    }

    #[test]
    fn engine_flag_accept_reject_matrix() {
        let a = Args::parse(&argv("l1 --engine analytical")).unwrap();
        assert_eq!(a.engine, Some(EngineMode::Analytical));
        let a = Args::parse(&argv("l1 --engine dense")).unwrap();
        assert_eq!(a.engine, Some(EngineMode::Dense));
        let a = Args::parse(&argv("l1 --engine event")).unwrap();
        assert_eq!(a.engine, Some(EngineMode::EventDriven));
        // Absent flag defers to the environment/default at run time.
        let a = Args::parse(&argv("l1")).unwrap();
        assert_eq!(a.engine, None);
        // Unknown engines and misplaced flags fail at parse time.
        let err = Args::parse(&argv("l1 --engine warp9")).unwrap_err();
        assert!(err.contains("invalid --engine value"), "{err}");
        assert!(Args::parse(&argv("l1 --engine")).is_err());
        for cmd in ["zoo", "nvlink", "arena", "characterize", "chat hi"] {
            let err = Args::parse(&argv(&format!("{cmd} --engine dense"))).unwrap_err();
            assert!(err.contains("--engine only applies"), "{cmd}: {err}");
        }
    }

    #[test]
    fn l1_analytical_predicts_and_cross_checks() {
        let a = Args::parse(&argv("l1 --engine analytical --bits 16")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("(analytical)"), "{out}");
        assert!(out.contains("predicted"), "{out}");
        assert!(out.contains("simulated cross-check"), "{out}");
        assert!(out.contains("verdict agreement: yes"), "{out}");
        // The closed form cannot model faults, defenses or traces.
        for flags in ["--faults seed=1,intensity=0", "--defense partition=2", "--profile"] {
            let a = Args::parse(&argv(&format!("l1 --engine analytical {flags}"))).unwrap();
            let err = run(&a).unwrap_err();
            assert!(err.contains("need a cycle engine"), "{flags}: {err}");
        }
    }

    #[test]
    fn l1_dense_engine_matches_the_default_event_engine() {
        let event = run(&Args::parse(&argv("l1 --engine event --bits 8")).unwrap()).unwrap();
        let dense = run(&Args::parse(&argv("l1 --engine dense --bits 8")).unwrap()).unwrap();
        assert_eq!(event, dense, "engine choice must not change the report");
    }

    #[test]
    fn characterize_dumps_and_verifies_a_round_tripping_table() {
        let path = std::env::temp_dir().join("gpgpu_cli_latency_table_test.txt");
        let path_s = path.to_str().unwrap().to_string();
        let mut a = Args::parse(&argv("characterize")).unwrap();
        a.out = Some(path_s.clone());
        let out = run(&a).unwrap();
        assert!(out.contains("characterized Tesla K40C"), "{out}");
        assert!(out.contains("6 op classes, 6 families"), "{out}");
        let dump = std::fs::read_to_string(&path).unwrap();
        assert!(dump.starts_with("gpgpu-latency-table v1"), "{dump}");
        for family in ["l1", "l2", "sfu", "atomic", "sync", "nvlink"] {
            assert!(dump.contains(&format!("family {family} ")), "{family}: {dump}");
        }
        // Loading the dump verifies the round trip.
        let mut a = Args::parse(&argv("characterize")).unwrap();
        a.table = Some(path_s);
        let out = run(&a).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(out.contains("round trip: ok"), "{out}");
        // A garbled dump is a typed error naming the bad line.
        let bad = std::env::temp_dir().join("gpgpu_cli_latency_table_bad.txt");
        std::fs::write(&bad, "gpgpu-latency-table v1 device=x\nop wat 1\n").unwrap();
        let mut a = Args::parse(&argv("characterize")).unwrap();
        a.table = Some(bad.to_str().unwrap().to_string());
        let err = run(&a).unwrap_err();
        std::fs::remove_file(&bad).ok();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn characterize_flag_accept_reject_matrix() {
        assert!(Args::parse(&argv("characterize")).is_ok());
        assert!(Args::parse(&argv("characterize --out t.txt")).is_ok());
        assert!(Args::parse(&argv("characterize --table t.txt")).is_ok());
        let err = Args::parse(&argv("characterize --out a --table b")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        for cmd in ["zoo", "l1", "arena"] {
            let err = Args::parse(&argv(&format!("{cmd} --out t.txt"))).unwrap_err();
            assert!(err.contains("--out/--table only apply"), "{cmd}: {err}");
        }
        assert!(Args::parse(&argv("characterize --out")).is_err());
        assert!(Args::parse(&argv("characterize --table")).is_err());
    }

    #[test]
    fn sweep_flag_accept_reject_matrix() {
        assert!(Args::parse(&argv("sweep")).is_ok());
        assert!(Args::parse(&argv("sweep --request device=kepler;family=l1;iters=4")).is_ok());
        assert!(Args::parse(&argv("sweep --cache-dir /tmp/c")).is_ok());
        assert!(Args::parse(&argv("sweep --cache-dir /tmp/c --resume")).is_ok());
        assert!(Args::parse(&argv("sweep --chaos seed=7,kills=2")).is_ok());
        // Bad sub-specs fail at parse time with the grammar's reason.
        let err = Args::parse(&argv("sweep --request family=l3")).unwrap_err();
        assert!(err.contains("invalid --request spec"), "{err}");
        let err = Args::parse(&argv("sweep --chaos kills=banana")).unwrap_err();
        assert!(err.contains("invalid --chaos spec"), "{err}");
        // --resume without a cache directory has no journal to resume.
        let err = Args::parse(&argv("sweep --resume")).unwrap_err();
        assert!(err.contains("--resume needs --cache-dir"), "{err}");
        // Sweep flags are rejected everywhere else.
        for cmd in ["zoo", "l1", "arena"] {
            let err = Args::parse(&argv(&format!("{cmd} --cache-dir /tmp/c"))).unwrap_err();
            assert!(err.contains("only apply to the sweep command"), "{cmd}: {err}");
        }
        assert!(Args::parse(&argv("sweep --request")).is_err());
        assert!(Args::parse(&argv("sweep --cache-dir")).is_err());
        assert!(Args::parse(&argv("sweep --chaos")).is_err());
    }

    #[test]
    fn sweep_command_prints_the_matrix_and_digest() {
        let a = Args::parse(&argv("sweep --request device=kepler;family=l1+atomic;iters=4;bits=8"))
            .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("sweep request: device=kepler;family=l1+atomic"), "{out}");
        assert!(out.contains("cells=2 computed=2"), "{out}");
        assert!(out.contains("matrix digest 0x"), "{out}");
    }

    #[test]
    fn sweep_warm_cache_and_chaos_reproduce_the_digest() {
        let dir = std::env::temp_dir().join(format!("gpgpu-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let request = "--request device=kepler;family=l1;iters=4+8;bits=8";
        let digest_of = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("matrix digest "))
                .map(str::to_string)
                .expect("digest line")
        };
        let cold =
            run(&Args::parse(&argv(&format!("sweep {request} --cache-dir {}", dir.display())))
                .unwrap())
            .unwrap();
        assert!(cold.contains("computed=2"), "{cold}");
        let warm = run(&Args::parse(&argv(&format!(
            "sweep {request} --cache-dir {} --resume",
            dir.display()
        )))
        .unwrap())
        .unwrap();
        assert!(warm.contains("resumed=2"), "the journal resumes the finished run: {warm}");
        let chaotic =
            run(&Args::parse(&argv(&format!("sweep {request} --chaos seed=3,kills=2,stalls=1")))
                .unwrap())
            .unwrap();
        assert_eq!(digest_of(&cold), digest_of(&warm));
        assert_eq!(digest_of(&cold), digest_of(&chaotic), "{chaotic}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn device_aliases_resolve() {
        for (alias, name) in
            [("fermi", "Tesla C2075"), ("K40C", "Tesla K40C"), ("quadro-m4000", "Quadro M4000")]
        {
            let mut a = Args::parse(&argv("devices")).unwrap();
            a.device = alias.to_string();
            assert_eq!(a.spec().unwrap().name, name);
        }
        let mut a = Args::parse(&argv("devices")).unwrap();
        a.device = "voodoo2".to_string();
        assert!(a.spec().is_err());
    }

    #[test]
    fn devices_and_help_reports() {
        let a = Args::parse(&argv("devices")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("Tesla K40C"));
        let a = Args::parse(&argv("help")).unwrap();
        assert!(run(&a).unwrap().contains("usage"));
    }

    #[test]
    fn recon_runs_end_to_end() {
        let a = Args::parse(&argv("recon --device kepler")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("leftover policy = true"), "{out}");
        assert!(out.contains("latency steps: 4"), "{out}");
    }

    #[test]
    fn chat_round_trips() {
        let a = Args::parse(&argv("chat hi")).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("\"hi\""), "{out}");
        assert!(out.contains("BER 0.00%"), "{out}");
        assert!(!out.contains("engine:"), "no counters without --stats: {out}");
    }

    #[test]
    fn stats_flag_appends_engine_counters() {
        let a = Args::parse(&argv("chat hi --stats")).unwrap();
        assert!(a.stats);
        let out = run(&a).unwrap();
        assert!(out.contains("engine: cycles:"), "{out}");
        assert!(out.contains("SM-steps:"), "{out}");
    }
}
