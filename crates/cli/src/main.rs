//! `gpgpu-covert` — command-line front end for the covert-channel
//! workbench.
//!
//! ```text
//! gpgpu-covert devices
//! gpgpu-covert chat --device k40c "the secret"
//! gpgpu-covert zoo --bits 24
//! gpgpu-covert l1 --trace-out trace.json --profile
//! gpgpu-covert recon
//! gpgpu-covert noise --exclusive
//! gpgpu-covert mitigations
//! ```

use gpgpu_cli::{run, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", gpgpu_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
