//! Property tests for the simulator: differential execution of ALU
//! programs against a host-side reference interpreter, determinism, and
//! liveness of arbitrary straight-line programs.

use gpgpu_isa::{Instr, Program, Reg, NUM_REGS};
use gpgpu_sim::{Device, KernelSpec};
use gpgpu_spec::{presets, LaunchConfig};
use proptest::prelude::*;

/// A host-side reference interpreter for the ALU/result subset of the ISA.
fn reference_execute(program: &Program, grid_blocks: u64) -> Vec<u64> {
    let mut regs = [0u64; NUM_REGS as usize];
    regs[(NUM_REGS - 1) as usize] = grid_blocks;
    let mut out = Vec::new();
    let mut pc = 0u32;
    let mut steps = 0;
    loop {
        steps += 1;
        assert!(steps < 100_000, "reference interpreter ran away");
        match *program.fetch(pc) {
            Instr::MovImm { rd, imm } => regs[rd.0 as usize] = imm,
            Instr::Mov { rd, rs } => regs[rd.0 as usize] = regs[rs.0 as usize],
            Instr::Add { rd, ra, rb } => {
                regs[rd.0 as usize] = regs[ra.0 as usize].wrapping_add(regs[rb.0 as usize])
            }
            Instr::Sub { rd, ra, rb } => {
                regs[rd.0 as usize] = regs[ra.0 as usize].wrapping_sub(regs[rb.0 as usize])
            }
            Instr::AddImm { rd, ra, imm } => {
                regs[rd.0 as usize] = regs[ra.0 as usize].wrapping_add(imm)
            }
            Instr::MulImm { rd, ra, imm } => {
                regs[rd.0 as usize] = regs[ra.0 as usize].wrapping_mul(imm)
            }
            Instr::AndImm { rd, ra, imm } => regs[rd.0 as usize] = regs[ra.0 as usize] & imm,
            Instr::PushResult { value } => out.push(regs[value.0 as usize]),
            Instr::Branch { cond, a, b, target } => {
                let bv = match b {
                    gpgpu_isa::Operand::Reg(r) => regs[r.0 as usize],
                    gpgpu_isa::Operand::Imm(i) => i,
                };
                if cond.eval(regs[a.0 as usize], bv) {
                    pc = target;
                    continue;
                }
            }
            Instr::Jump { target } => {
                pc = target;
                continue;
            }
            Instr::Halt => return out,
            ref other => panic!("reference interpreter does not model {other}"),
        }
        pc += 1;
    }
}

/// Strategy: a structured random ALU program (straight-line body plus an
/// optional counted loop), guaranteed to terminate.
fn alu_program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec((0u8..7, 0u16..8, 0u16..8, any::<u64>()), 1..40), 1u64..6).prop_map(
        |(body, loop_count)| {
            let mut b = gpgpu_isa::ProgramBuilder::new();
            b.repeat(Reg(15), loop_count, |b| {
                for &(op, rd, ra, imm) in &body {
                    let (rd, ra) = (Reg(rd), Reg(ra));
                    match op {
                        0 => {
                            b.mov_imm(rd, imm);
                        }
                        1 => {
                            b.mov(rd, ra);
                        }
                        2 => {
                            b.add(rd, ra, rd);
                        }
                        3 => {
                            b.sub(rd, ra, rd);
                        }
                        4 => {
                            b.add_imm(rd, ra, imm);
                        }
                        5 => {
                            b.mul_imm(rd, ra, imm);
                        }
                        _ => {
                            b.and_imm(rd, ra, imm);
                        }
                    }
                }
                b.push_result(Reg(0));
            });
            b.build().expect("generated program assembles")
        },
    )
}

fn run_on_device(program: &Program, blocks: u32) -> (Vec<u64>, u64) {
    let mut dev = Device::new(presets::tesla_k40c());
    let k = dev
        .launch(0, KernelSpec::new("prop", program.clone(), LaunchConfig::new(blocks, 32)))
        .expect("launch accepted");
    dev.run_until_idle(50_000_000).expect("program terminates");
    (dev.results(k).expect("complete").warp_results(0, 0).unwrap().to_vec(), dev.now())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The simulator and the reference interpreter agree on every ALU
    /// program's architectural results.
    #[test]
    fn differential_alu_execution(program in alu_program()) {
        let (sim, _) = run_on_device(&program, 1);
        let reference = reference_execute(&program, 1);
        prop_assert_eq!(sim, reference);
    }

    /// Execution is fully deterministic: same program, same results, same
    /// cycle count.
    #[test]
    fn execution_is_deterministic(program in alu_program(), blocks in 1u32..8) {
        let (r1, c1) = run_on_device(&program, blocks);
        let (r2, c2) = run_on_device(&program, blocks);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(c1, c2);
    }

    /// Every block of every grid runs the same program to completion and
    /// pushes the same architectural results.
    #[test]
    fn all_blocks_agree(program in alu_program()) {
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev
            .launch(0, KernelSpec::new("p", program.clone(), LaunchConfig::new(5, 32)))
            .unwrap();
        dev.run_until_idle(50_000_000).unwrap();
        let r = dev.results(k).unwrap();
        let first = r.warp_results(0, 0).unwrap().to_vec();
        for blk in 1..5 {
            prop_assert_eq!(r.warp_results(blk, 0).unwrap(), first.as_slice());
        }
    }

    /// `reset_for_trial` is observationally a fresh device: after dirtying a
    /// device with one arbitrary run (and allocations, jitter and stats),
    /// resetting it and replaying a second arbitrary program yields exactly
    /// the results, clock, kernel table and engine counters of a brand-new
    /// `Device::new` running the same program.
    #[test]
    fn reset_for_trial_is_a_fresh_device(
        dirty in alu_program(),
        replay in alu_program(),
        blocks in 1u32..6,
    ) {
        let mut dev = Device::new(presets::tesla_k40c());
        dev.alloc_constant(4096);
        dev.alloc_global(1 << 16);
        dev.set_launch_jitter(64, 0xD1);
        dev.launch(0, KernelSpec::new("dirty", dirty, LaunchConfig::new(blocks, 32))).unwrap();
        dev.run_until_idle(50_000_000).unwrap();
        dev.reset_for_trial();

        let observe = |dev: &mut Device| {
            let k = dev
                .launch(0, KernelSpec::new("replay", replay.clone(), LaunchConfig::new(blocks, 32)))
                .unwrap();
            dev.run_until_idle(50_000_000).unwrap();
            let r = dev.results(k).unwrap();
            (r.flat_results(), r.completed_at, dev.now(), dev.kernel_names(), *dev.stats())
        };
        let reused = observe(&mut dev);
        let fresh = observe(&mut Device::new(presets::tesla_k40c()));
        prop_assert_eq!(reused, fresh);
    }

    /// Restoring a pristine snapshot is equally indistinguishable from a
    /// fresh device — the other half of the pooling contract.
    #[test]
    fn pristine_snapshot_restore_is_a_fresh_device(
        dirty in alu_program(),
        replay in alu_program(),
    ) {
        let mut dev = Device::new(presets::tesla_k40c());
        let pristine = dev.snapshot().unwrap();
        dev.alloc_constant(4096);
        dev.launch(0, KernelSpec::new("dirty", dirty, LaunchConfig::new(2, 32))).unwrap();
        dev.run_until_idle(50_000_000).unwrap();
        dev.restore(&pristine).unwrap();

        let observe = |dev: &mut Device| {
            let k = dev
                .launch(0, KernelSpec::new("replay", replay.clone(), LaunchConfig::new(2, 32)))
                .unwrap();
            dev.run_until_idle(50_000_000).unwrap();
            (dev.results(k).unwrap().flat_results(), dev.now(), *dev.stats())
        };
        let restored = observe(&mut dev);
        let fresh = observe(&mut Device::new(presets::tesla_k40c()));
        prop_assert_eq!(restored, fresh);
    }
}
