//! Deterministic fault injection: seeded, schedulable perturbations of the
//! simulated device, for stressing covert channels the way real co-running
//! workloads, driver scheduling noise and cache interference do — but
//! reproducibly.
//!
//! A [`FaultPlan`] is a small, serializable schedule (see
//! [`FaultPlan::from_spec`] for the textual grammar); a [`FaultInjector`]
//! executes it. The injector is installed on a [`crate::Device`] exactly
//! like a [`crate::TraceSink`]: a single `Option` check per hook site, zero
//! cost when absent, and identical behaviour in both engine modes.
//!
//! Six fault kinds are modelled, each anchored at an *event site* both
//! engines execute identically (never per-cycle polling, which the
//! event-driven engine would skip):
//!
//! * **evict** — transient invalidation bursts of one L1 set across every
//!   SM, applied lazily at the first constant access of a burst window;
//! * **storm** — a phantom workload's eviction storm: every constant access
//!   inside a burst window first refills the target set with synthetic
//!   lines, as a co-resident cache hog would;
//! * **jitter** — warp-issue jitter: issued instructions stall a few extra
//!   cycles at their scheduler;
//! * **skew** — trojan/spy launch skew: kernel arrivals are delayed by a
//!   seeded offset, breaking launch alignment;
//! * **clock** — `clock()` perturbation: timing reads observe a small
//!   seeded offset;
//! * **link** — inter-device link congestion: transfers crossing a
//!   [`crate::Topology`] link during a burst window queue behind seeded
//!   phantom traffic, as a bandwidth-hogging co-tenant's peer-to-peer
//!   copies would.
//!
//! All decisions are pure functions of `(seed, cycle, site)` via splitmix64,
//! so a plan's effect is bit-reproducible across engine modes, worker
//! threads and processes.

use crate::tuning::splitmix64;
use gpgpu_mem::ConstHierarchy;

/// Per-kind salts decorrelating the six fault streams drawn from one seed.
const SALT_EVICT: u64 = 0xE51C_7B01;
const SALT_JITTER: u64 = 0x117E_5202;
const SALT_SKEW: u64 = 0x5EE3_AA03;
const SALT_CLOCK: u64 = 0xC10C_0F04;
const SALT_STORM: u64 = 0x5702_4D05;
const SALT_LINK: u64 = 0x11AC_C906;

/// Weyl constant spreading window indices before gating (same constant as
/// the splitmix64 increment).
const WINDOW_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which fault kinds a plan enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultKinds {
    /// Transient L1-set invalidation bursts.
    pub evict: bool,
    /// Warp-issue jitter at the schedulers.
    pub jitter: bool,
    /// Kernel launch skew.
    pub skew: bool,
    /// `clock()` read perturbation.
    pub clock: bool,
    /// Phantom-workload eviction storms.
    pub storm: bool,
    /// Inter-device link congestion bursts (topology layer).
    pub link: bool,
}

impl FaultKinds {
    /// Every kind enabled.
    pub fn all() -> Self {
        FaultKinds { evict: true, jitter: true, skew: true, clock: true, storm: true, link: true }
    }

    /// No kind enabled (a plan with no kinds is a no-op).
    pub fn none() -> Self {
        FaultKinds::default()
    }

    /// The cache-contention kinds (evict + storm) — the pair that attacks
    /// the prime+probe channels directly.
    pub fn cache() -> Self {
        FaultKinds { evict: true, storm: true, ..FaultKinds::none() }
    }
}

/// A seeded, serializable fault schedule.
///
/// Time is divided into windows of `period` cycles, phase-shifted per fault
/// kind by a seed-derived offset; the first `burst` cycles of each window
/// are *active*. An active window actually fires with probability
/// `intensity` (seeded, per window), so intensity scales fault pressure
/// continuously from 0 (never) to 1 (every window).
///
/// # Example
///
/// ```
/// use gpgpu_sim::FaultPlan;
///
/// let plan = FaultPlan::from_spec("seed=7,intensity=0.5,kinds=evict+storm").unwrap();
/// assert_eq!(FaultPlan::from_spec(&plan.to_spec()).unwrap(), plan);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Root seed; all per-window and per-site decisions derive from it.
    pub seed: u64,
    /// Fraction of windows that fire, in `[0, 1]`.
    pub intensity: f64,
    /// Window length in cycles (>= 1).
    pub period: u64,
    /// Active cycles at the start of each window (<= `period`).
    pub burst: u64,
    /// L1 set targeted by evict/storm faults (taken modulo the geometry's
    /// set count at the hook site).
    pub target_set: u64,
    /// Enabled fault kinds.
    pub kinds: FaultKinds,
}

impl FaultPlan {
    /// A cache-fault plan (evict + storm) with default timing: windows of
    /// 50 000 cycles, 12 500-cycle bursts, full intensity, targeting set 2
    /// (the §7.1 sync channel's first data set).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            intensity: 1.0,
            period: 50_000,
            burst: 12_500,
            target_set: 2,
            kinds: FaultKinds::cache(),
        }
    }

    /// Sets the firing probability per window (clamped to `[0, 1]`).
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity.clamp(0.0, 1.0);
        self
    }

    /// Sets the window period in cycles (clamped to >= 1); the burst is
    /// clamped down to the new period if needed.
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self.burst = self.burst.min(self.period);
        self
    }

    /// Sets the burst length in cycles (clamped to the period).
    pub fn with_burst(mut self, burst: u64) -> Self {
        self.burst = burst.min(self.period);
        self
    }

    /// Sets the L1 set targeted by evict/storm faults.
    pub fn with_target_set(mut self, set: u64) -> Self {
        self.target_set = set;
        self
    }

    /// Sets the enabled fault kinds.
    pub fn with_kinds(mut self, kinds: FaultKinds) -> Self {
        self.kinds = kinds;
        self
    }

    /// Derives an independent plan for retransmission round `round_key`:
    /// same schedule shape, decorrelated seed — so an ARQ retry faces
    /// different burst phases, the way real interference decorrelates
    /// between attempts.
    pub fn reseeded(&self, round_key: u64) -> Self {
        FaultPlan { seed: splitmix64(self.seed ^ round_key), ..*self }
    }

    /// Parses the textual spec grammar (the CLI's `--faults` argument):
    /// comma-separated `key=value` pairs with keys `seed`, `intensity`,
    /// `period`, `burst`, `set` and `kinds` (a `+`-separated subset of
    /// `evict`, `jitter`, `skew`, `clock`, `storm`, `link`, or
    /// `all`/`none`). Omitted keys keep the [`FaultPlan::new`] defaults
    /// (seed 0).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys/kinds, malformed
    /// numbers, `period=0`, `burst > period` or intensity outside `[0, 1]`.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(0);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got `{part}`"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value.parse().map_err(|_| format!("invalid seed `{value}`"))?;
                }
                "intensity" => {
                    let i: f64 =
                        value.parse().map_err(|_| format!("invalid intensity `{value}`"))?;
                    if !(0.0..=1.0).contains(&i) {
                        return Err(format!("intensity {i} outside [0, 1]"));
                    }
                    plan.intensity = i;
                }
                "period" => {
                    plan.period = value.parse().map_err(|_| format!("invalid period `{value}`"))?;
                    if plan.period == 0 {
                        return Err("period must be >= 1".to_string());
                    }
                }
                "burst" => {
                    plan.burst = value.parse().map_err(|_| format!("invalid burst `{value}`"))?;
                }
                "set" => {
                    plan.target_set =
                        value.parse().map_err(|_| format!("invalid set `{value}`"))?;
                }
                "kinds" => {
                    let mut kinds = FaultKinds::none();
                    for kind in value.split('+').map(str::trim) {
                        match kind {
                            "evict" => kinds.evict = true,
                            "jitter" => kinds.jitter = true,
                            "skew" => kinds.skew = true,
                            "clock" => kinds.clock = true,
                            "storm" => kinds.storm = true,
                            "link" => kinds.link = true,
                            "all" => kinds = FaultKinds::all(),
                            "none" => kinds = FaultKinds::none(),
                            other => return Err(format!("unknown fault kind `{other}`")),
                        }
                    }
                    plan.kinds = kinds;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        if plan.burst > plan.period {
            return Err(format!("burst {} exceeds period {}", plan.burst, plan.period));
        }
        Ok(plan)
    }

    /// Renders the plan in the [`FaultPlan::from_spec`] grammar;
    /// `from_spec(&plan.to_spec())` round-trips exactly.
    pub fn to_spec(&self) -> String {
        let mut kinds = Vec::new();
        if self.kinds.evict {
            kinds.push("evict");
        }
        if self.kinds.jitter {
            kinds.push("jitter");
        }
        if self.kinds.skew {
            kinds.push("skew");
        }
        if self.kinds.clock {
            kinds.push("clock");
        }
        if self.kinds.storm {
            kinds.push("storm");
        }
        if self.kinds.link {
            kinds.push("link");
        }
        let kinds = if kinds.is_empty() { "none".to_string() } else { kinds.join("+") };
        format!(
            "seed={},intensity={},period={},burst={},set={},kinds={kinds}",
            self.seed, self.intensity, self.period, self.burst, self.target_set
        )
    }

    /// Seed-derived phase offset of `salt`'s window grid.
    fn phase(&self, salt: u64) -> u64 {
        splitmix64(self.seed ^ salt) % self.period.max(1)
    }

    /// Window index of cycle `now` on `salt`'s phase-shifted grid.
    fn window(&self, now: u64, salt: u64) -> u64 {
        (now + self.phase(salt)) / self.period.max(1)
    }

    /// Whether `now` lies in the active burst of its window.
    fn in_burst(&self, now: u64, salt: u64) -> bool {
        (now + self.phase(salt)) % self.period.max(1) < self.burst
    }

    /// Whether window `window` of `salt`'s stream fires (seeded Bernoulli
    /// with probability `intensity`).
    fn fires(&self, salt: u64, window: u64) -> bool {
        let p = (self.intensity.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        splitmix64(self.seed ^ salt ^ window.wrapping_mul(WINDOW_SPREAD)) % 1_000_000 < p
    }

    /// Whether `now` lies in a burst that fires, and if so in which window.
    fn active_window(&self, now: u64, salt: u64) -> Option<u64> {
        if !self.in_burst(now, salt) {
            return None;
        }
        let w = self.window(now, salt);
        self.fires(salt, w).then_some(w)
    }
}

/// Counters of the faults an injector actually delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Invalidation bursts applied (one per firing evict window).
    pub invalidation_bursts: u64,
    /// L1 lines dropped by invalidation bursts.
    pub lines_invalidated: u64,
    /// Synthetic lines inserted by eviction storms.
    pub storm_fills: u64,
    /// Warp issues that received extra stall cycles.
    pub jittered_issues: u64,
    /// Total extra stall cycles injected.
    pub jitter_cycles: u64,
    /// Kernel launches whose arrival was skewed.
    pub skewed_launches: u64,
    /// Total skew cycles injected.
    pub skew_cycles: u64,
    /// `clock()` reads that observed a perturbed value.
    pub perturbed_clocks: u64,
    /// Link transfers that queued behind injected congestion.
    pub congested_transfers: u64,
    /// Phantom flits injected ahead of congested transfers.
    pub congestion_flits: u64,
}

impl FaultStats {
    /// Total delivered fault events across every kind.
    pub fn total_events(&self) -> u64 {
        self.invalidation_bursts
            + self.storm_fills
            + self.jittered_issues
            + self.skewed_launches
            + self.perturbed_clocks
            + self.congested_transfers
    }
}

/// Executes a [`FaultPlan`] against a running device. Installed via
/// [`crate::Device::set_fault_injector`]; every hook site is a single
/// `Option` check when no injector is present.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stats: FaultStats,
    /// Evict bursts are one-shot per window, applied lazily at the first
    /// constant access inside the window — an event site both engine modes
    /// reach identically.
    last_evict_window: Option<u64>,
}

impl FaultInjector {
    /// Builds an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, stats: FaultStats::default(), last_evict_window: None }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults delivered so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Extra arrival delay for kernel `kernel` (launch-skew faults).
    /// Keyed by kernel id alone so the skew of a given launch is identical
    /// in both engine modes and across worker threads.
    pub(crate) fn launch_skew(&mut self, kernel: u32) -> u64 {
        if !self.plan.kinds.skew || !self.plan.fires(SALT_SKEW, u64::from(kernel)) {
            return 0;
        }
        let span = (self.plan.intensity.clamp(0.0, 1.0) * self.plan.burst as f64) as u64;
        if span == 0 {
            return 0;
        }
        let skew = 1 + splitmix64(self.plan.seed ^ SALT_SKEW ^ (u64::from(kernel) << 32)) % span;
        self.stats.skewed_launches += 1;
        self.stats.skew_cycles += skew;
        skew
    }

    /// Extra stall cycles for an instruction issued at `now` by scheduler
    /// `sched` of SM `sm` (warp-issue jitter). Always >= 0 and added to a
    /// wake time that is already `> now`, so the engine invariant that an
    /// executed warp can never become ready this cycle is preserved.
    pub(crate) fn issue_jitter(&mut self, now: u64, sm: u32, sched: u32) -> u64 {
        if !self.plan.kinds.jitter || self.plan.active_window(now, SALT_JITTER).is_none() {
            return 0;
        }
        let span = 1 + (self.plan.intensity.clamp(0.0, 1.0) * 31.0) as u64;
        let key = self.plan.seed
            ^ SALT_JITTER
            ^ now.wrapping_mul(WINDOW_SPREAD)
            ^ (u64::from(sm) << 48)
            ^ (u64::from(sched) << 40);
        let jitter = 1 + splitmix64(key) % span;
        self.stats.jittered_issues += 1;
        self.stats.jitter_cycles += jitter;
        jitter
    }

    /// Cache faults applied immediately before a constant access by SM `sm`
    /// at cycle `now`: a one-shot set invalidation when an evict window
    /// first becomes active, and a phantom refill of the target set on every
    /// access inside a storm window. Both engines execute the same constant
    /// access stream, so the fault stream is identical too.
    pub(crate) fn before_const_access(
        &mut self,
        now: u64,
        sm: u32,
        const_mem: &mut ConstHierarchy,
    ) {
        let plan = self.plan;
        let num_sets = const_mem.l1(sm as usize).geometry().num_sets();
        let set = plan.target_set % num_sets.max(1);
        if plan.kinds.evict && plan.in_burst(now, SALT_EVICT) {
            let w = plan.window(now, SALT_EVICT);
            if self.last_evict_window != Some(w) {
                self.last_evict_window = Some(w);
                if plan.fires(SALT_EVICT, w) {
                    self.stats.lines_invalidated += const_mem.invalidate_l1_set(set);
                    self.stats.invalidation_bursts += 1;
                }
            }
        }
        if plan.kinds.storm {
            if let Some(w) = plan.active_window(now, SALT_STORM) {
                let ways = const_mem.l1(sm as usize).geometry().ways();
                let salt = plan.seed ^ w ^ (u64::from(sm) << 32);
                const_mem.phantom_fill_l1_set(sm as usize, set, ways, u32::MAX, salt);
                self.stats.storm_fills += ways;
            }
        }
    }

    /// Phantom congestion flits to enqueue ahead of a link transfer
    /// requested at `now` on link `link` (link-congestion faults). The
    /// count is a pure function of `(seed, window, link)`, so every
    /// transfer inside one firing burst window queues behind the same
    /// phantom workload — mirroring how a real co-tenant's bulk copy
    /// occupies the link for a stretch, not per-request noise.
    pub(crate) fn link_congestion(&mut self, now: u64, link: u32) -> u64 {
        if !self.plan.kinds.link {
            return 0;
        }
        let Some(w) = self.plan.active_window(now, SALT_LINK) else {
            return 0;
        };
        // Scale phantom depth with intensity *and* window length: a longer
        // storm window means the co-tenant had proportionally longer to
        // enqueue its bulk copy, so slow storms can exceed a topology's
        // queue budget and surface as `LinkSaturated` instead of jitter.
        let span = 1 + (self.plan.intensity.clamp(0.0, 1.0) * self.plan.period as f64) as u64;
        let key =
            self.plan.seed ^ SALT_LINK ^ w.wrapping_mul(WINDOW_SPREAD) ^ (u64::from(link) << 48);
        let flits = 1 + splitmix64(key) % span;
        self.stats.congested_transfers += 1;
        self.stats.congestion_flits += flits;
        flits
    }

    /// Offset added to a `clock()` read at `now` on SM `sm` (clock
    /// perturbation faults).
    pub(crate) fn clock_perturbation(&mut self, now: u64, sm: u32) -> u64 {
        if !self.plan.kinds.clock || self.plan.active_window(now, SALT_CLOCK).is_none() {
            return 0;
        }
        let span = 1 + (self.plan.intensity.clamp(0.0, 1.0) * 63.0) as u64;
        let key =
            self.plan.seed ^ SALT_CLOCK ^ now.wrapping_mul(WINDOW_SPREAD) ^ (u64::from(sm) << 48);
        let offset = splitmix64(key) % span;
        if offset > 0 {
            self.stats.perturbed_clocks += 1;
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_spec::presets;

    fn hierarchy() -> ConstHierarchy {
        let d = presets::tesla_k40c();
        ConstHierarchy::new(d.num_sms, &d.const_l1, &d.const_l2, &d.mem)
    }

    #[test]
    fn spec_round_trips_and_defaults_hold() {
        let plan = FaultPlan::new(7)
            .with_intensity(0.25)
            .with_period(8_000)
            .with_burst(1_500)
            .with_target_set(3)
            .with_kinds(FaultKinds::all());
        assert_eq!(FaultPlan::from_spec(&plan.to_spec()).unwrap(), plan);
        // Omitted keys keep defaults.
        let sparse = FaultPlan::from_spec("seed=9").unwrap();
        assert_eq!(sparse, FaultPlan::new(9));
        // Empty spec is the all-default plan.
        assert_eq!(FaultPlan::from_spec("").unwrap(), FaultPlan::new(0));
        // kinds=none round-trips.
        let none = FaultPlan::new(1).with_kinds(FaultKinds::none());
        assert_eq!(FaultPlan::from_spec(&none.to_spec()).unwrap(), none);
    }

    #[test]
    fn spec_rejects_malformed_input() {
        for bad in [
            "seed",
            "seed=x",
            "intensity=1.5",
            "intensity=-0.1",
            "period=0",
            "period=1000,burst=2000",
            "kinds=evict+meteor",
            "frequency=3",
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn reseeding_is_deterministic_and_decorrelating() {
        let plan = FaultPlan::new(42);
        assert_eq!(plan.reseeded(1), plan.reseeded(1));
        assert_ne!(plan.reseeded(1).seed, plan.reseeded(2).seed);
        assert_ne!(plan.reseeded(1).seed, plan.seed);
        // Only the seed changes.
        assert_eq!(plan.reseeded(5).period, plan.period);
    }

    #[test]
    fn intensity_scales_firing_rate() {
        let rate = |intensity: f64| -> usize {
            let plan = FaultPlan::new(11).with_intensity(intensity);
            (0..1_000).filter(|&w| plan.fires(SALT_EVICT, w)).count()
        };
        assert_eq!(rate(0.0), 0);
        assert_eq!(rate(1.0), 1_000);
        let half = rate(0.5);
        assert!((350..=650).contains(&half), "half-intensity fired {half}/1000");
    }

    #[test]
    fn evict_bursts_are_one_shot_per_window() {
        let plan = FaultPlan::new(3)
            .with_period(1_000)
            .with_burst(1_000)
            .with_kinds(FaultKinds { evict: true, ..FaultKinds::none() });
        let mut inj = FaultInjector::new(plan);
        let mut mem = hierarchy();
        // Warm the target set (set 2: line 2 of the 64 B-line geometry) on
        // SM 0.
        mem.access(0, 2 * 64, 0, 0);
        // Accessing every cycle over 3 periods crosses 3 or 4 window
        // boundaries (the grid is phase-shifted), and each window fires
        // exactly one burst regardless of how many accesses fall in it.
        for t in 0..3_000 {
            inj.before_const_access(t, 0, &mut mem);
        }
        let bursts = inj.stats().invalidation_bursts;
        assert!((3..=4).contains(&bursts), "expected one burst per window, got {bursts}");
        // The line was only resident for the first burst; invalidation does
        // not refill.
        assert_eq!(inj.stats().lines_invalidated, 1);
    }

    #[test]
    fn storms_evict_resident_lines() {
        let plan = FaultPlan::new(5)
            .with_period(1_000)
            .with_burst(1_000)
            .with_kinds(FaultKinds { storm: true, ..FaultKinds::none() });
        let mut inj = FaultInjector::new(plan);
        let mut mem = hierarchy();
        let addr = 2 * 64; // set 2, the plan's target
        mem.access(0, addr, 0, 0);
        assert!(mem.l1(0).probe(addr));
        inj.before_const_access(100, 0, &mut mem);
        assert!(!mem.l1(0).probe(addr), "storm should evict the resident line");
        assert!(inj.stats().storm_fills > 0);
    }

    #[test]
    fn hooks_are_deterministic_per_seed() {
        let sequence = |seed: u64| -> Vec<u64> {
            let plan =
                FaultPlan::new(seed).with_period(100).with_burst(100).with_kinds(FaultKinds::all());
            let mut inj = FaultInjector::new(plan);
            (0..200)
                .map(|t| inj.issue_jitter(t, 0, 1) ^ (inj.clock_perturbation(t, 2) << 16))
                .collect()
        };
        assert_eq!(sequence(1), sequence(1));
        assert_ne!(sequence(1), sequence(2));
    }

    #[test]
    fn disabled_kinds_deliver_nothing() {
        let plan = FaultPlan::new(9).with_kinds(FaultKinds::none());
        let mut inj = FaultInjector::new(plan);
        let mut mem = hierarchy();
        mem.access(0, 2 * 64, 0, 0);
        for t in 0..1_000 {
            assert_eq!(inj.issue_jitter(t, 0, 0), 0);
            assert_eq!(inj.clock_perturbation(t, 0), 0);
            inj.before_const_access(t, 0, &mut mem);
        }
        assert_eq!(inj.launch_skew(0), 0);
        assert_eq!(inj.stats(), &FaultStats::default());
        assert!(mem.l1(0).probe(2 * 64));
    }

    #[test]
    fn link_congestion_is_window_stable_and_deterministic() {
        let plan = FaultPlan::new(21)
            .with_period(1_000)
            .with_burst(1_000)
            .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        // Inside one window every transfer sees the same phantom depth.
        let first = a.link_congestion(100, 0);
        assert!(first > 0, "full-intensity burst must fire");
        assert_eq!(a.link_congestion(400, 0), first, "stable within a window");
        assert_eq!(b.link_congestion(100, 0), first, "pure function of (seed, window, link)");
        // Different links draw decorrelated depths.
        assert_ne!(a.link_congestion(100, 1), first);
        assert!(a.stats().congested_transfers >= 3);
        assert!(a.stats().congestion_flits > 0);
        assert!(a.stats().total_events() >= 3);
        // Disabled kind injects nothing.
        let mut off = FaultInjector::new(plan.with_kinds(FaultKinds::none()));
        assert_eq!(off.link_congestion(100, 0), 0);
        assert_eq!(off.stats(), &FaultStats::default());
    }

    #[test]
    fn link_kind_round_trips_through_the_spec_grammar() {
        let plan = FaultPlan::new(4).with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        let spec = plan.to_spec();
        assert!(spec.contains("kinds=link"), "{spec}");
        assert_eq!(FaultPlan::from_spec(&spec).unwrap(), plan);
        assert!(FaultPlan::from_spec("kinds=all").unwrap().kinds.link);
    }

    #[test]
    fn launch_skew_is_per_kernel_and_bounded() {
        let plan = FaultPlan::new(13).with_kinds(FaultKinds { skew: true, ..FaultKinds::none() });
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for k in 0..8 {
            let s = a.launch_skew(k);
            assert_eq!(s, b.launch_skew(k), "skew must be a pure function of (seed, kernel)");
            assert!(s <= plan.burst, "skew {s} exceeds burst bound");
        }
    }
}
