//! Optional device hardening knobs — the mitigation classes of the paper's
//! Section 9, implemented so their effect on each channel can be measured:
//!
//! * **cache partitioning** ("partitioning the cache [9, 17, 39]"): the
//!   constant caches are statically divided among kernels, so one kernel's
//!   fills can never evict another's lines;
//! * **randomized warp scheduling** ("add entropy to the assignment of the
//!   resources [40]"): warps are assigned to warp schedulers by a keyed
//!   hash instead of round-robin, breaking the per-scheduler contention
//!   alignment;
//! * **clock fuzzing** ("add entropy ... to the measurement of time [20]",
//!   TimeWarp): `clock()` reads are quantized to a coarse granularity,
//!   hiding the hit/miss latency difference.

/// Cycle-engine mode: how aggressively the engine may skip redundant work.
///
/// `Dense` and `EventDriven` produce **bit-identical simulation results** —
/// the event-driven engine only skips work that provably cannot change
/// architectural state (SMs with no issuable or waking warp, placement
/// passes after a fixpoint). `Dense` exists as the ablation baseline so the
/// speedup is measurable against the same binary.
///
/// `Analytical` opts a *caller* out of cycle simulation entirely: layers
/// that know how to answer in closed form (the `gpgpu-covert` analytical
/// predictor, fed by [`crate::latency::LatencyTable`]s extracted from the
/// cycle engine) answer without running the cycle loop, within documented
/// error tolerances instead of bit-exactly. When a [`crate::Device`] *is*
/// constructed under `Analytical` (e.g. by the characterization probes that
/// build the tables in the first place), the cycle loop runs event-driven —
/// the device itself has no approximate mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Visit every SM every cycle and re-run block placement every cycle
    /// (the original engine; kept for ablation benchmarks).
    Dense,
    /// Skip SMs with no wake event at the current cycle and gate block
    /// placement behind a dirty flag (default).
    #[default]
    EventDriven,
    /// Closed-form fast path: answer from extracted latency tables where the
    /// caller supports it; any residual cycle simulation runs event-driven.
    Analytical,
}

impl EngineMode {
    /// Canonical spec label (`dense`, `event`, `analytical`) — the grammar
    /// accepted by [`EngineMode::from_str`] and the CLI's `--engine` flag.
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Dense => "dense",
            EngineMode::EventDriven => "event",
            EngineMode::Analytical => "analytical",
        }
    }
}

impl std::str::FromStr for EngineMode {
    type Err = String;

    /// Parses an engine label: `dense`, `event` (or `event-driven`), or
    /// `analytical` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Ok(EngineMode::Dense),
            "event" | "event-driven" | "eventdriven" => Ok(EngineMode::EventDriven),
            "analytical" | "analytic" => Ok(EngineMode::Analytical),
            other => Err(format!("unknown engine `{other}` (expected dense, event or analytical)")),
        }
    }
}

/// Configuration knobs applied at [`crate::Device`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceTuning {
    /// Block-placement policy.
    pub policy: crate::PlacementPolicy,
    /// Cycle-engine mode (event-driven by default; dense for ablations).
    pub engine: EngineMode,
    /// Number of static cache partitions (0 or 1 disables). Kernel `k` may
    /// only occupy sets of region `k % partitions` in both constant cache
    /// levels.
    pub cache_partitions: u32,
    /// When set, warps are assigned to schedulers by a keyed hash of
    /// (seed, kernel, block, warp) instead of round-robin.
    pub random_warp_scheduler: Option<u64>,
    /// `clock()` quantization in cycles (0 or 1 disables).
    pub clock_granularity: u64,
}

impl DeviceTuning {
    /// Untuned device (no mitigations, leftover policy).
    pub fn none() -> Self {
        Self::default()
    }

    /// The effective clock quantum (1 = exact clock).
    pub fn clock_quantum(&self) -> u64 {
        self.clock_granularity.max(1)
    }

    /// Merges two tunings into one, knob by knob: a knob set on exactly one
    /// side wins, a knob set identically on both sides is kept, and a knob
    /// set *differently* on both sides is a typed conflict. This is the
    /// composition primitive the mitigation layer lowers stacked defenses
    /// through — building each defense's tuning from `..DeviceTuning::none()`
    /// and keeping only the last one silently dropped every other defense.
    ///
    /// A knob counts as "set" when it differs from its disabled default
    /// (`cache_partitions <= 1` and `clock_granularity <= 1` are no-ops, so
    /// e.g. partitions 0 merges cleanly with partitions 1).
    ///
    /// # Errors
    ///
    /// [`crate::SimError::TuningConflict`] naming the contested knob and
    /// both values.
    pub fn merge(self, other: DeviceTuning) -> Result<DeviceTuning, crate::SimError> {
        fn pick<T: PartialEq + Copy + std::fmt::Debug>(
            field: &'static str,
            a: T,
            b: T,
            is_set: impl Fn(T) -> bool,
        ) -> Result<T, crate::SimError> {
            match (is_set(a), is_set(b)) {
                (true, true) if a != b => Err(crate::SimError::TuningConflict {
                    field,
                    ours: format!("{a:?}"),
                    theirs: format!("{b:?}"),
                }),
                (_, true) => Ok(b),
                _ => Ok(a),
            }
        }
        Ok(DeviceTuning {
            policy: pick("policy", self.policy, other.policy, |p| {
                p != crate::PlacementPolicy::default()
            })?,
            engine: pick("engine", self.engine, other.engine, |e| e != EngineMode::default())?,
            cache_partitions: pick(
                "cache_partitions",
                self.cache_partitions,
                other.cache_partitions,
                |p| p > 1,
            )?,
            random_warp_scheduler: pick(
                "random_warp_scheduler",
                self.random_warp_scheduler,
                other.random_warp_scheduler,
                |s| s.is_some(),
            )?,
            clock_granularity: pick(
                "clock_granularity",
                self.clock_granularity,
                other.clock_granularity,
                |g| g > 1,
            )?,
        })
    }

    /// Lowers a validated [`gpgpu_spec::DefenseSpec`] onto device tuning by
    /// merging each component's knob. Infallible: a `DefenseSpec` holds at
    /// most one component per kind, so no knob can be contested.
    pub fn from_defense(defense: &gpgpu_spec::DefenseSpec) -> DeviceTuning {
        defense.components().iter().fold(DeviceTuning::none(), |acc, c| {
            let one = match *c {
                gpgpu_spec::DefenseComponent::CachePartitioning { partitions } => {
                    DeviceTuning { cache_partitions: partitions, ..DeviceTuning::none() }
                }
                gpgpu_spec::DefenseComponent::RandomizedWarpScheduling { seed } => {
                    DeviceTuning { random_warp_scheduler: Some(seed), ..DeviceTuning::none() }
                }
                gpgpu_spec::DefenseComponent::ClockFuzzing { granularity } => {
                    DeviceTuning { clock_granularity: granularity, ..DeviceTuning::none() }
                }
            };
            acc.merge(one).expect("a validated DefenseSpec has one component per knob")
        })
    }
}

/// SplitMix64: a tiny keyed hash used for randomized warp-scheduler
/// assignment (deterministic per seed, uncorrelated across inputs).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_mitigation() {
        let t = DeviceTuning::none();
        assert_eq!(t.cache_partitions, 0);
        assert_eq!(t.random_warp_scheduler, None);
        assert_eq!(t.clock_quantum(), 1);
    }

    #[test]
    fn clock_quantum_clamps() {
        let t = DeviceTuning { clock_granularity: 256, ..DeviceTuning::none() };
        assert_eq!(t.clock_quantum(), 256);
    }

    #[test]
    fn merge_keeps_both_sides_knobs() {
        // The historical bug: building each mitigation's tuning from
        // `..DeviceTuning::none()` and taking the last one dropped every
        // other active defense. Merge must keep both.
        let partition = DeviceTuning { cache_partitions: 2, ..DeviceTuning::none() };
        let fuzz = DeviceTuning { clock_granularity: 4096, ..DeviceTuning::none() };
        let both = partition.merge(fuzz).unwrap();
        assert_eq!(both.cache_partitions, 2);
        assert_eq!(both.clock_granularity, 4096);
        // Merge with a no-op side is the identity, in either order.
        assert_eq!(both.merge(DeviceTuning::none()).unwrap(), both);
        assert_eq!(DeviceTuning::none().merge(both).unwrap(), both);
    }

    #[test]
    fn merge_conflicts_are_typed_errors() {
        let two = DeviceTuning { cache_partitions: 2, ..DeviceTuning::none() };
        let four = DeviceTuning { cache_partitions: 4, ..DeviceTuning::none() };
        let e = two.merge(four).unwrap_err();
        match &e {
            crate::SimError::TuningConflict { field, ours, theirs } => {
                assert_eq!(*field, "cache_partitions");
                assert_eq!((ours.as_str(), theirs.as_str()), ("2", "4"));
            }
            other => panic!("expected TuningConflict, got {other:?}"),
        }
        assert!(e.to_string().contains("cache_partitions"), "{e}");
        // Identical non-default values are not a conflict.
        assert_eq!(two.merge(two).unwrap(), two);
        // Disabled encodings (0 and 1 both mean "off") merge cleanly.
        let off0 = DeviceTuning { cache_partitions: 0, ..DeviceTuning::none() };
        let off1 = DeviceTuning { cache_partitions: 1, ..DeviceTuning::none() };
        assert!(off0.merge(off1).is_ok());
        let seeded = DeviceTuning { random_warp_scheduler: Some(7), ..DeviceTuning::none() };
        let reseeded = DeviceTuning { random_warp_scheduler: Some(9), ..DeviceTuning::none() };
        assert!(matches!(
            seeded.merge(reseeded),
            Err(crate::SimError::TuningConflict { field: "random_warp_scheduler", .. })
        ));
    }

    #[test]
    fn defense_specs_lower_onto_merged_tunings() {
        let d =
            gpgpu_spec::DefenseSpec::from_spec("partition=2,randsched=0xd1ce,fuzz=4096").unwrap();
        let t = DeviceTuning::from_defense(&d);
        assert_eq!(t.cache_partitions, 2);
        assert_eq!(t.random_warp_scheduler, Some(0xD1CE));
        assert_eq!(t.clock_granularity, 4096);
        assert_eq!(
            DeviceTuning::from_defense(&gpgpu_spec::DefenseSpec::none()),
            DeviceTuning::none()
        );
    }

    #[test]
    fn engine_labels_round_trip_and_merge_as_set_knobs() {
        for mode in [EngineMode::Dense, EngineMode::EventDriven, EngineMode::Analytical] {
            assert_eq!(mode.label().parse::<EngineMode>().unwrap(), mode);
        }
        assert!("warp9".parse::<EngineMode>().unwrap_err().contains("unknown engine"));
        // A non-default engine counts as "set": two different requests are a
        // typed conflict, and a set engine survives a merge with the default.
        let dense = DeviceTuning { engine: EngineMode::Dense, ..DeviceTuning::none() };
        let ana = DeviceTuning { engine: EngineMode::Analytical, ..DeviceTuning::none() };
        assert!(matches!(
            dense.merge(ana),
            Err(crate::SimError::TuningConflict { field: "engine", .. })
        ));
        assert_eq!(DeviceTuning::none().merge(ana).unwrap().engine, EngineMode::Analytical);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Rough spread check over schedulers.
        let buckets: Vec<u64> = (0..100).map(|i| splitmix64(i) % 4).collect();
        for s in 0..4 {
            assert!(buckets.iter().filter(|&&b| b == s).count() > 10);
        }
    }
}
