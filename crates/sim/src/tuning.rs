//! Optional device hardening knobs — the mitigation classes of the paper's
//! Section 9, implemented so their effect on each channel can be measured:
//!
//! * **cache partitioning** ("partitioning the cache [9, 17, 39]"): the
//!   constant caches are statically divided among kernels, so one kernel's
//!   fills can never evict another's lines;
//! * **randomized warp scheduling** ("add entropy to the assignment of the
//!   resources [40]"): warps are assigned to warp schedulers by a keyed
//!   hash instead of round-robin, breaking the per-scheduler contention
//!   alignment;
//! * **clock fuzzing** ("add entropy ... to the measurement of time [20]",
//!   TimeWarp): `clock()` reads are quantized to a coarse granularity,
//!   hiding the hit/miss latency difference.

/// Cycle-engine mode: how aggressively the engine may skip redundant work.
///
/// Both modes produce **bit-identical simulation results** — the event-driven
/// engine only skips work that provably cannot change architectural state
/// (SMs with no issuable or waking warp, placement passes after a fixpoint).
/// `Dense` exists as the ablation baseline so the speedup is measurable
/// against the same binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Visit every SM every cycle and re-run block placement every cycle
    /// (the original engine; kept for ablation benchmarks).
    Dense,
    /// Skip SMs with no wake event at the current cycle and gate block
    /// placement behind a dirty flag (default).
    #[default]
    EventDriven,
}

/// Configuration knobs applied at [`crate::Device`] construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceTuning {
    /// Block-placement policy.
    pub policy: crate::PlacementPolicy,
    /// Cycle-engine mode (event-driven by default; dense for ablations).
    pub engine: EngineMode,
    /// Number of static cache partitions (0 or 1 disables). Kernel `k` may
    /// only occupy sets of region `k % partitions` in both constant cache
    /// levels.
    pub cache_partitions: u32,
    /// When set, warps are assigned to schedulers by a keyed hash of
    /// (seed, kernel, block, warp) instead of round-robin.
    pub random_warp_scheduler: Option<u64>,
    /// `clock()` quantization in cycles (0 or 1 disables).
    pub clock_granularity: u64,
}

impl DeviceTuning {
    /// Untuned device (no mitigations, leftover policy).
    pub fn none() -> Self {
        Self::default()
    }

    /// The effective clock quantum (1 = exact clock).
    pub fn clock_quantum(&self) -> u64 {
        self.clock_granularity.max(1)
    }
}

/// SplitMix64: a tiny keyed hash used for randomized warp-scheduler
/// assignment (deterministic per seed, uncorrelated across inputs).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_mitigation() {
        let t = DeviceTuning::none();
        assert_eq!(t.cache_partitions, 0);
        assert_eq!(t.random_warp_scheduler, None);
        assert_eq!(t.clock_quantum(), 1);
    }

    #[test]
    fn clock_quantum_clamps() {
        let t = DeviceTuning { clock_granularity: 256, ..DeviceTuning::none() };
        assert_eq!(t.clock_quantum(), 256);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Rough spread check over schedulers.
        let buckets: Vec<u64> = (0..100).map(|i| splitmix64(i) % 4).collect();
        for s in 0..4 {
            assert!(buckets.iter().filter(|&&b| b == s).count() > 10);
        }
    }
}
