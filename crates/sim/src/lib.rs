//! Cycle-level GPGPU simulator for the `gpgpu-covert` workspace.
//!
//! This crate is the execution substrate standing in for the three physical
//! NVIDIA GPUs of the paper (see `DESIGN.md` for the substitution argument).
//! It models exactly the microarchitectural structures the paper's covert
//! channels exploit:
//!
//! * a **leftover-policy block scheduler**: blocks are placed round-robin
//!   over SMs with per-SM accounting of threads, blocks, shared memory and
//!   registers; blocks that do not fit queue until resources free
//!   (paper Section 3.1);
//! * **round-robin warp → warp-scheduler assignment** within each SM;
//! * **per-warp-scheduler functional-unit issue ports**, so FU contention is
//!   isolated to warps on the same scheduler (paper Section 5);
//! * the **constant cache hierarchy**, **atomic units** and **global memory**
//!   from `gpgpu-mem`;
//! * **multi-stream host API** with a configurable kernel-launch overhead
//!   and optional launch jitter (the noise source behind the paper's
//!   Figure 5 error-rate curves).
//!
//! # Example
//!
//! ```
//! use gpgpu_sim::{Device, KernelSpec};
//! use gpgpu_spec::{presets, LaunchConfig};
//! use gpgpu_isa::{ProgramBuilder, Reg, Special};
//!
//! // Read %smid from every block of a 15-block kernel (the paper's
//! // block-scheduler reverse-engineering probe).
//! let mut b = ProgramBuilder::new();
//! b.read_special(Reg(0), Special::SmId);
//! b.push_result(Reg(0));
//! let program = b.build()?;
//!
//! let mut dev = Device::new(presets::tesla_k40c());
//! let k = dev.launch(0, KernelSpec::new("probe", program, LaunchConfig::new(15, 128)))?;
//! dev.run_until_idle(1_000_000)?;
//! let results = dev.results(k)?;
//! assert_eq!(results.blocks.len(), 15);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod device;
mod error;
mod fault;
mod kernel;
pub mod latency;
mod policy;
mod sm;
mod snapshot;
mod stats;
mod topology;
mod trace;
mod tuning;
mod warp;

pub use device::Device;
pub use error::SimError;
pub use fault::{FaultInjector, FaultKinds, FaultPlan, FaultStats};
pub use kernel::{BlockRecord, KernelId, KernelResults, KernelSpec};
pub use latency::{FamilyModel, LatencyTable, LatencyTableError, OpClass};
pub use policy::PlacementPolicy;
pub use snapshot::DeviceSnapshot;
pub use stats::SimStats;
pub use topology::{LinkTransfer, Topology, TopologyStats};
pub use trace::{
    chrome_trace_json, EventTrace, NullSink, TraceEvent, TraceRecord, TraceSink,
    DEFAULT_TRACE_CAPACITY,
};
pub use tuning::{DeviceTuning, EngineMode};
pub use warp::WarpState;

/// Stream identifier. Kernels launched on the same stream execute in launch
/// order; kernels on different streams may execute concurrently — the
/// multiprogramming mechanism the paper uses ("we utilized streams for
/// multiprogramming on GPU", Section 2).
pub type StreamId = u32;
