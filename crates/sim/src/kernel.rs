//! Kernel launch descriptors, lifecycle state and host-visible results.

use gpgpu_isa::Program;
use gpgpu_spec::LaunchConfig;
use std::sync::Arc;

/// Opaque handle to a launched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u32);

/// What the host submits: a name (for diagnostics), a program and a launch
/// configuration.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Diagnostic name (e.g. `"spy"` / `"trojan"` / `"rodinia-hotspot"`).
    /// Shared, not owned: cloning a spec (or reading it back through
    /// [`KernelResults`]) bumps a refcount instead of copying the string.
    pub name: Arc<str>,
    /// The warp program every warp of the grid executes.
    pub program: Arc<Program>,
    /// Grid/block shape and per-block resources.
    pub launch: LaunchConfig,
}

impl KernelSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, program: Program, launch: LaunchConfig) -> Self {
        KernelSpec { name: name.into().into(), program: Arc::new(program), launch }
    }
}

/// Completion record of one thread block: where it ran and when — the
/// observables the paper uses to reverse engineer the block scheduler
/// (Section 3.1: "we read the SM ID register (smid) for each block ... and
/// use the clock() function to measure the start time and stop time").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// Linear block index within the grid.
    pub block_id: u32,
    /// SM the block executed on.
    pub sm_id: u32,
    /// Cycle the block was placed on its SM.
    pub start_cycle: u64,
    /// Cycle the block's last warp halted.
    pub end_cycle: u64,
    /// Total instructions executed by the block's warps.
    pub instructions: u64,
    /// Functional-unit operations executed.
    pub fu_ops: u64,
    /// Memory operations executed (constant/global/shared/atomic).
    pub mem_ops: u64,
    /// Result buffers of the block's warps, indexed by warp-in-block.
    pub warp_results: Vec<Vec<u64>>,
}

impl BlockRecord {
    /// An all-zero record — the fallback when the per-trial record arena is
    /// empty. Every field is overwritten at harvest time; the arena exists
    /// only so `warp_results` buffers get recycled instead of reallocated.
    pub(crate) fn empty() -> Self {
        BlockRecord {
            block_id: 0,
            sm_id: 0,
            start_cycle: 0,
            end_cycle: 0,
            instructions: 0,
            fu_ops: 0,
            mem_ops: 0,
            warp_results: Vec::new(),
        }
    }
}

/// Host-visible outcome of a completed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelResults {
    /// The kernel's id.
    pub id: KernelId,
    /// The kernel's diagnostic name (shared with the launched spec).
    pub name: Arc<str>,
    /// Cycle the launch command was submitted.
    pub submitted_at: u64,
    /// Cycle the kernel became eligible for block dispatch (submission plus
    /// launch overhead and jitter).
    pub arrived_at: u64,
    /// Cycle the last block completed.
    pub completed_at: u64,
    /// Per-block records, ordered by block id.
    pub blocks: Vec<BlockRecord>,
}

impl KernelResults {
    /// All result values pushed by all warps, ordered by
    /// (block, warp-in-block, push order).
    pub fn flat_results(&self) -> Vec<u64> {
        self.blocks.iter().flat_map(|b| b.warp_results.iter().flatten().copied()).collect()
    }

    /// The set of SM ids this kernel's blocks ran on, sorted, deduplicated.
    pub fn sms_used(&self) -> Vec<u32> {
        let mut sms: Vec<u32> = self.blocks.iter().map(|b| b.sm_id).collect();
        sms.sort_unstable();
        sms.dedup();
        sms
    }

    /// Total instructions executed by the kernel.
    pub fn total_instructions(&self) -> u64 {
        self.blocks.iter().map(|b| b.instructions).sum()
    }

    /// `(instructions, fu_ops, mem_ops)` across the kernel.
    pub fn instruction_mix(&self) -> (u64, u64, u64) {
        self.blocks
            .iter()
            .fold((0, 0, 0), |(i, f, m), b| (i + b.instructions, f + b.fu_ops, m + b.mem_ops))
    }

    /// Results of one block's warp, if present.
    pub fn warp_results(&self, block_id: u32, warp_in_block: u32) -> Option<&[u64]> {
        self.blocks
            .iter()
            .find(|b| b.block_id == block_id)
            .and_then(|b| b.warp_results.get(warp_in_block as usize))
            .map(|v| v.as_slice())
    }
}

/// Lifecycle state of a launched kernel (simulator-internal). `Clone` so a
/// [`crate::DeviceSnapshot`] can capture the kernel table of an idle device.
#[derive(Debug, Clone)]
pub(crate) struct KernelState {
    pub spec: KernelSpec,
    pub stream: crate::StreamId,
    pub submitted_at: u64,
    /// When the kernel's blocks become eligible for dispatch.
    pub arrival: u64,
    /// Next block index awaiting placement.
    pub next_block: u32,
    /// Blocks that were preempted and await re-placement (SMK policy).
    pub retry_blocks: Vec<u32>,
    /// Number of blocks that have fully completed.
    pub blocks_done: u32,
    /// Per-block completion records (filled as blocks finish).
    pub records: Vec<BlockRecord>,
    pub completed_at: Option<u64>,
}

impl KernelState {
    pub fn all_blocks_placed(&self) -> bool {
        self.next_block >= self.spec.launch.grid_blocks && self.retry_blocks.is_empty()
    }

    pub fn is_complete(&self) -> bool {
        self.blocks_done >= self.spec.launch.grid_blocks
    }

    /// Takes the next block awaiting placement (preempted blocks first).
    pub fn pop_next_block(&mut self) -> Option<u32> {
        if let Some(b) = self.retry_blocks.pop() {
            return Some(b);
        }
        if self.next_block < self.spec.launch.grid_blocks {
            let b = self.next_block;
            self.next_block += 1;
            Some(b)
        } else {
            None
        }
    }

    /// Returns a block to the placement queue without consuming it (used
    /// when no SM can host it yet).
    pub fn push_back_block(&mut self, block_id: u32) {
        if block_id + 1 == self.next_block && self.retry_blocks.is_empty() {
            self.next_block = block_id;
        } else {
            self.retry_blocks.push(block_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_isa::ProgramBuilder;

    fn results() -> KernelResults {
        KernelResults {
            id: KernelId(3),
            name: "t".into(),
            submitted_at: 0,
            arrived_at: 10,
            completed_at: 100,
            blocks: vec![
                BlockRecord {
                    block_id: 0,
                    sm_id: 2,
                    start_cycle: 10,
                    end_cycle: 50,
                    instructions: 12,
                    fu_ops: 3,
                    mem_ops: 2,
                    warp_results: vec![vec![1, 2], vec![3]],
                },
                BlockRecord {
                    block_id: 1,
                    sm_id: 0,
                    start_cycle: 11,
                    end_cycle: 60,
                    instructions: 8,
                    fu_ops: 1,
                    mem_ops: 4,
                    warp_results: vec![vec![4]],
                },
            ],
        }
    }

    #[test]
    fn flat_results_preserve_order() {
        assert_eq!(results().flat_results(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn sms_used_is_sorted_dedup() {
        assert_eq!(results().sms_used(), vec![0, 2]);
    }

    #[test]
    fn warp_results_lookup() {
        let r = results();
        assert_eq!(r.warp_results(0, 1), Some(&[3u64][..]));
        assert_eq!(r.warp_results(1, 0), Some(&[4u64][..]));
        assert_eq!(r.warp_results(1, 9), None);
        assert_eq!(r.warp_results(9, 0), None);
    }

    #[test]
    fn instruction_accounting() {
        let r = results();
        assert_eq!(r.total_instructions(), 20);
        assert_eq!(r.instruction_mix(), (20, 4, 6));
    }

    #[test]
    fn kernel_spec_constructor() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let s = KernelSpec::new("x", b.build().unwrap(), gpgpu_spec::LaunchConfig::new(1, 32));
        assert_eq!(&*s.name, "x");
        assert_eq!(s.launch.grid_blocks, 1);
    }
}
