//! Multi-device topologies: N [`Device`]s joined by NVLink-style links with
//! shared-link contention accounting.
//!
//! The intra-GPU channels of the paper measure queueing on shared on-chip
//! resources (constant-cache sets, SFU issue ports, atomic units). An
//! inter-GPU link is the same story one level up: a [`LinkSpec`]-described
//! link owns a small number of parallel *lanes*, transfers occupy lane
//! slots, and concurrent traffic from the two endpoints queues visibly —
//! exactly the observable NVBleed exploits on real NVLink fabrics.
//!
//! The model mirrors the per-scheduler issue-port structure of
//! [`crate::Device`]:
//!
//! * each link has `lanes` slot lanes; a transfer of `n` flits occupies one
//!   lane for `n * slot_cycles` cycles;
//! * lanes are granted by **round-robin slot arbitration**: a rotating
//!   cursor picks the first free lane, falling back to the
//!   earliest-draining lane when all are busy (the queueing delay is the
//!   covert-channel signal);
//! * delivery completes one propagation `latency_cycles` after the last
//!   slot — two for request/response round trips
//!   ([`Topology::remote_atomic`]).
//!
//! All link timing is pure integer arithmetic over explicit request
//! timestamps — no per-cycle polling — so transfer schedules are
//! bit-identical across engine modes, worker threads and processes, and the
//! [`crate::FaultInjector`]'s link-congestion hook composes without
//! breaking that invariant.

use crate::device::Device;
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultStats};
use crate::kernel::{KernelId, KernelSpec};
use crate::trace::{TraceEvent, TraceSink};
use crate::tuning::DeviceTuning;
use crate::StreamId;
use gpgpu_spec::topology::FLIT_BYTES;
use gpgpu_spec::{LinkSpec, TopologySpec};

/// One completed link transfer: when it started occupying a lane, when it
/// was delivered, and how long it queued first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransfer {
    /// The link the transfer crossed.
    pub link: u32,
    /// Source device index.
    pub from: u32,
    /// Destination device index.
    pub to: u32,
    /// Flits moved ([`FLIT_BYTES`] bytes each).
    pub flits: u64,
    /// Cycle the transfer was requested.
    pub requested: u64,
    /// Cycle the first slot was granted (>= `requested`).
    pub start: u64,
    /// Cycle the payload was delivered at the destination.
    pub end: u64,
    /// `start - requested`: cycles spent queueing behind busy lanes.
    pub queue_cycles: u64,
}

impl LinkTransfer {
    /// End-to-end latency the requester observed (`end - requested`).
    pub fn latency(&self) -> u64 {
        self.end - self.requested
    }
}

/// Aggregate counters over every transfer a topology serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopologyStats {
    /// Transfers serviced (p2p copies + remote atomics).
    pub transfers: u64,
    /// Total flits moved.
    pub flits: u64,
    /// Total cycles transfers spent queued behind busy lanes.
    pub queue_cycles: u64,
    /// Peer-to-peer copies serviced.
    pub p2p_copies: u64,
    /// Remote atomic operations serviced.
    pub remote_atomics: u64,
}

/// Runtime state of one link: its spec plus per-lane busy horizons and the
/// round-robin arbitration cursor.
#[derive(Debug, Clone)]
struct LinkState {
    spec: LinkSpec,
    /// Cycle each lane becomes free.
    lane_free: Vec<u64>,
    /// Next lane the arbiter considers first (round-robin, mirroring the
    /// per-scheduler FU issue-port cursor).
    rr_cursor: usize,
}

impl LinkState {
    fn new(spec: LinkSpec) -> Self {
        LinkState { spec, lane_free: vec![0; spec.lanes as usize], rr_cursor: 0 }
    }

    /// Grants one lane for a transfer arriving at `now`: the first free
    /// lane scanning round-robin from the cursor, else the
    /// earliest-draining lane (ties broken in cursor order). Returns
    /// `(lane, start_cycle)` without occupying it.
    fn arbitrate(&self, now: u64) -> (usize, u64) {
        let lanes = self.lane_free.len();
        let mut best_lane = self.rr_cursor % lanes;
        let mut best_free = self.lane_free[best_lane];
        for offset in 0..lanes {
            let lane = (self.rr_cursor + offset) % lanes;
            let free = self.lane_free[lane];
            if free <= now {
                return (lane, now);
            }
            if free < best_free {
                best_lane = lane;
                best_free = free;
            }
        }
        (best_lane, best_free)
    }

    /// Occupies `lane` for `flits` flits starting at `start`, advancing the
    /// arbitration cursor. Returns the cycle the last slot drains.
    fn occupy(&mut self, lane: usize, start: u64, flits: u64) -> u64 {
        let drained = start + flits * self.spec.slot_cycles;
        self.lane_free[lane] = drained;
        self.rr_cursor = (lane + 1) % self.lane_free.len();
        drained
    }
}

/// N [`Device`]s joined by contended links, with peer-to-peer copies and
/// remote atomics that queue on lanes the way warps queue on functional
/// units.
///
/// # Example
///
/// ```
/// use gpgpu_sim::Topology;
/// use gpgpu_spec::TopologySpec;
///
/// let mut topo = Topology::new(&TopologySpec::dual("kepler").unwrap()).unwrap();
/// let quiet = topo.remote_atomic(0, 0, 4, 1_000).unwrap();
/// let bulk = topo.p2p_copy(0, 1, 64 * 1024, 1_000).unwrap();
/// let contended = topo.remote_atomic(0, 0, 4, 1_001).unwrap();
/// assert!(contended.latency() > quiet.latency(), "bulk copy congests the link");
/// assert!(bulk.flits > contended.flits);
/// ```
#[derive(Debug)]
pub struct Topology {
    spec: TopologySpec,
    devices: Vec<Device>,
    links: Vec<LinkState>,
    trace: Option<Box<dyn TraceSink>>,
    faults: Option<FaultInjector>,
    stats: TopologyStats,
    /// Maximum queueing delay a transfer may accumulate before the request
    /// fails with [`SimError::LinkSaturated`].
    queue_limit: u64,
}

impl Topology {
    /// Builds the topology with default device tuning.
    ///
    /// # Errors
    ///
    /// [`SimError::Launch`] wrapping the [`gpgpu_spec::SpecError`] if the
    /// spec fails validation.
    pub fn new(spec: &TopologySpec) -> Result<Self, SimError> {
        Topology::with_tuning(spec, DeviceTuning::none())
    }

    /// Builds the topology with every device sharing `tuning` (engine mode
    /// selection for the engine-equivalence tests).
    ///
    /// # Errors
    ///
    /// As [`Topology::new`].
    pub fn with_tuning(spec: &TopologySpec, tuning: DeviceTuning) -> Result<Self, SimError> {
        spec.validate().map_err(SimError::Launch)?;
        let devices = spec
            .device_specs()
            .map_err(SimError::Launch)?
            .into_iter()
            .map(|d| Device::with_tuning(d, tuning))
            .collect();
        Ok(Topology {
            spec: spec.clone(),
            devices,
            links: spec.links.iter().copied().map(LinkState::new).collect(),
            trace: None,
            faults: None,
            stats: TopologyStats::default(),
            queue_limit: u64::MAX,
        })
    }

    /// Fails transfers whose queueing delay exceeds `cycles` with
    /// [`SimError::LinkSaturated`] instead of waiting forever — the guard
    /// that turns a congestion-fault storm into a typed error rather than
    /// an unbounded stall.
    pub fn with_queue_limit(mut self, cycles: u64) -> Self {
        self.queue_limit = cycles;
        self
    }

    /// Resets the topology to its just-built state *in place*: every device
    /// is reset via [`Device::reset_for_trial`] (keeping their internal
    /// arenas warm), link lanes drain, arbitration cursors rewind and the
    /// transfer counters zero. The trace sink and fault injector are
    /// removed, mirroring construction; the queue limit and device tuning
    /// are construction-time properties and survive. Sweeps that run many
    /// transmissions over the same [`TopologySpec`] reset between trials
    /// instead of rebuilding N devices each time.
    pub fn reset_for_trial(&mut self) {
        for dev in &mut self.devices {
            dev.reset_for_trial();
        }
        for link in &mut self.links {
            link.lane_free.fill(0);
            link.rr_cursor = 0;
        }
        self.trace = None;
        self.faults = None;
        self.stats = TopologyStats::default();
    }

    /// The validated spec this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Immutable access to device `index`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] when `index` is out of range.
    pub fn device(&self, index: usize) -> Result<&Device, SimError> {
        self.devices
            .get(index)
            .ok_or(SimError::UnknownDevice { index, devices: self.devices.len() })
    }

    /// Mutable access to device `index`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`] when `index` is out of range.
    pub fn device_mut(&mut self, index: usize) -> Result<&mut Device, SimError> {
        let devices = self.devices.len();
        self.devices.get_mut(index).ok_or(SimError::UnknownDevice { index, devices })
    }

    /// Launches a kernel on stream `stream` of device `device`.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownDevice`], or any launch-validation error of
    /// [`Device::launch`].
    pub fn launch(
        &mut self,
        device: usize,
        stream: StreamId,
        kernel: KernelSpec,
    ) -> Result<KernelId, SimError> {
        self.device_mut(device)?.launch(stream, kernel)
    }

    /// Runs every device until all are idle (each bounded by `max_cycles`).
    /// Devices are independent clock domains; cross-device interaction
    /// happens only through explicit link transfers.
    ///
    /// # Errors
    ///
    /// The first device failure, in device order.
    pub fn run_all_until_idle(&mut self, max_cycles: u64) -> Result<(), SimError> {
        for dev in &mut self.devices {
            dev.run_until_idle(max_cycles)?;
        }
        Ok(())
    }

    /// The furthest-advanced device clock.
    pub fn device_now(&self) -> u64 {
        self.devices.iter().map(Device::now).max().unwrap_or(0)
    }

    /// Installs a sink receiving [`TraceEvent::LinkTransfer`] events (one
    /// per serviced transfer, timestamped at the request cycle).
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Installs a fault injector whose link-congestion hook perturbs
    /// subsequent transfers (other fault kinds are inert at this layer;
    /// install injectors on individual devices for those).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Removes and returns the fault injector.
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// Counters of faults the topology's injector delivered so far.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(FaultInjector::stats)
    }

    /// Aggregate transfer counters.
    pub fn stats(&self) -> &TopologyStats {
        &self.stats
    }

    /// The earliest cycle at which link `link` has a free lane.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownLink`] when `link` is out of range.
    pub fn link_ready_at(&self, link: usize) -> Result<u64, SimError> {
        let state = self
            .links
            .get(link)
            .ok_or(SimError::UnknownLink { index: link, links: self.links.len() })?;
        Ok(state.lane_free.iter().copied().min().unwrap_or(0))
    }

    /// Copies `bytes` from device `from` to its link peer over link `link`,
    /// starting at cycle `now`: the bulk one-way transfer a trojan uses to
    /// occupy lanes.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownLink`], [`SimError::NotALinkEndpoint`], or
    /// [`SimError::LinkSaturated`] past the queue limit.
    pub fn p2p_copy(
        &mut self,
        link: usize,
        from: usize,
        bytes: u64,
        now: u64,
    ) -> Result<LinkTransfer, SimError> {
        let flits = bytes.div_ceil(FLIT_BYTES).max(1);
        let t = self.request(link, from, flits, false, now)?;
        self.stats.p2p_copies += 1;
        Ok(t)
    }

    /// Performs `ops` remote atomic operations from device `from` on its
    /// link peer's memory over link `link`, starting at cycle `now`. Each
    /// op moves one request flit and the completion waits for the response,
    /// so the observed latency includes *two* link traversals — the small,
    /// timeable probe a spy uses to sample lane occupancy.
    ///
    /// # Errors
    ///
    /// As [`Topology::p2p_copy`].
    pub fn remote_atomic(
        &mut self,
        link: usize,
        from: usize,
        ops: u64,
        now: u64,
    ) -> Result<LinkTransfer, SimError> {
        let t = self.request(link, from, ops.max(1), true, now)?;
        self.stats.remote_atomics += 1;
        Ok(t)
    }

    /// The shared transfer path: validates the route, applies congestion
    /// faults, arbitrates a lane, occupies it and accounts the transfer.
    fn request(
        &mut self,
        link: usize,
        from: usize,
        flits: u64,
        round_trip: bool,
        now: u64,
    ) -> Result<LinkTransfer, SimError> {
        let num_links = self.links.len();
        let state = self
            .links
            .get_mut(link)
            .ok_or(SimError::UnknownLink { index: link, links: num_links })?;
        let from_u32 =
            u32::try_from(from).map_err(|_| SimError::NotALinkEndpoint { link, device: from })?;
        let to = state
            .spec
            .peer_of(from_u32)
            .ok_or(SimError::NotALinkEndpoint { link, device: from })?;

        // Congestion faults: a firing burst window queues a phantom
        // co-tenant workload ahead of this transfer, striped across every
        // lane the way a bulk copy is.
        if let Some(inj) = &mut self.faults {
            let phantom = inj.link_congestion(now, link as u32);
            if phantom > 0 {
                let lanes = state.lane_free.len() as u64;
                let per_lane = phantom.div_ceil(lanes);
                for lane in 0..state.lane_free.len() {
                    let start = state.lane_free[lane].max(now);
                    state.lane_free[lane] = start + per_lane * state.spec.slot_cycles;
                }
            }
        }

        let (lane, start) = state.arbitrate(now);
        let queue_cycles = start - now;
        if queue_cycles > self.queue_limit {
            return Err(SimError::LinkSaturated { link, queue_cycles });
        }
        let drained = state.occupy(lane, start, flits);
        let traversals = if round_trip { 2 } else { 1 };
        let end = drained + traversals * state.spec.latency_cycles;

        self.stats.transfers += 1;
        self.stats.flits += flits;
        self.stats.queue_cycles += queue_cycles;
        if let Some(sink) = &mut self.trace {
            sink.record(
                now,
                TraceEvent::LinkTransfer {
                    link: link as u32,
                    from: from_u32,
                    to,
                    flits,
                    queue_cycles,
                },
            );
        }
        Ok(LinkTransfer {
            link: link as u32,
            from: from_u32,
            to,
            flits,
            requested: now,
            start,
            end,
            queue_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKinds, FaultPlan};
    use crate::trace::EventTrace;
    use gpgpu_spec::topology::DEFAULT_SLOT_CYCLES;

    fn dual() -> Topology {
        Topology::new(&TopologySpec::dual("kepler").unwrap()).unwrap()
    }

    #[test]
    fn builds_devices_from_presets() {
        let topo = dual();
        assert_eq!(topo.num_devices(), 2);
        assert_eq!(topo.num_links(), 1);
        assert_eq!(topo.device(0).unwrap().spec().name, "Tesla K40C");
        assert!(matches!(topo.device(7), Err(SimError::UnknownDevice { index: 7, devices: 2 })));
    }

    #[test]
    fn quiet_probe_latency_is_service_plus_round_trip() {
        let mut topo = dual();
        let lat = topo.spec().links[0].latency_cycles;
        let t = topo.remote_atomic(0, 0, 4, 100).unwrap();
        assert_eq!(t.queue_cycles, 0);
        assert_eq!(t.latency(), 4 * DEFAULT_SLOT_CYCLES + 2 * lat);
        assert_eq!((t.from, t.to), (0, 1));
    }

    #[test]
    fn p2p_copy_is_one_way_and_rounds_up_to_flits() {
        let mut topo = dual();
        let lat = topo.spec().links[0].latency_cycles;
        let t = topo.p2p_copy(0, 1, 33, 0).unwrap();
        assert_eq!(t.flits, 2, "33 bytes round up to two flits");
        assert_eq!(t.latency(), 2 * DEFAULT_SLOT_CYCLES + lat);
        assert_eq!((t.from, t.to), (1, 0));
    }

    #[test]
    fn concurrent_transfers_queue_and_round_robin_over_lanes() {
        let mut topo = dual();
        let lanes = topo.spec().links[0].lanes as u64;
        assert_eq!(lanes, 2);
        // Two bulk copies fill both lanes...
        let a = topo.p2p_copy(0, 1, 1024, 0).unwrap();
        let b = topo.p2p_copy(0, 1, 1024, 0).unwrap();
        assert_eq!(a.queue_cycles, 0);
        assert_eq!(b.queue_cycles, 0, "second copy lands on the second lane");
        // ...so a probe right behind them queues until a lane drains.
        let probe = topo.remote_atomic(0, 0, 1, 1).unwrap();
        assert!(probe.queue_cycles > 0, "expected queueing, got {probe:?}");
        assert_eq!(probe.start, 1024 / FLIT_BYTES * DEFAULT_SLOT_CYCLES);
        assert_eq!(topo.stats().transfers, 3);
        assert_eq!(topo.stats().queue_cycles, probe.queue_cycles);
    }

    #[test]
    fn arbitration_is_deterministic() {
        let run = || {
            let mut topo = dual();
            let mut log = Vec::new();
            for i in 0..32u64 {
                let t = if i % 3 == 0 {
                    topo.p2p_copy(0, 1, 4096, i * 7).unwrap()
                } else {
                    topo.remote_atomic(0, 0, 2, i * 7).unwrap()
                };
                log.push((t.start, t.end, t.queue_cycles));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn endpoint_and_link_validation() {
        let mut topo = dual();
        assert!(matches!(
            topo.p2p_copy(3, 0, 64, 0),
            Err(SimError::UnknownLink { index: 3, links: 1 })
        ));
        assert!(matches!(
            topo.remote_atomic(0, 5, 1, 0),
            Err(SimError::NotALinkEndpoint { link: 0, device: 5 })
        ));
        assert_eq!(topo.stats(), &TopologyStats::default(), "failed requests are not accounted");
    }

    #[test]
    fn queue_limit_surfaces_saturation_as_a_typed_error() {
        let mut topo = dual().with_queue_limit(100);
        // Saturate both lanes far beyond the limit.
        topo.p2p_copy(0, 1, 1 << 20, 0).unwrap();
        topo.p2p_copy(0, 1, 1 << 20, 0).unwrap();
        let err = topo.remote_atomic(0, 0, 1, 1).unwrap_err();
        assert!(
            matches!(err, SimError::LinkSaturated { link: 0, queue_cycles } if queue_cycles > 100),
            "{err:?}"
        );
    }

    #[test]
    fn congestion_faults_delay_transfers_and_count() {
        let plan = FaultPlan::new(77)
            .with_period(1_000_000)
            .with_burst(1_000_000)
            .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        let mut faulted = dual();
        faulted.set_fault_injector(FaultInjector::new(plan));
        let mut clean = dual();
        let hot = faulted.remote_atomic(0, 0, 2, 50).unwrap();
        let cold = clean.remote_atomic(0, 0, 2, 50).unwrap();
        assert!(hot.latency() > cold.latency(), "congestion must add delay");
        let stats = faulted.fault_stats().unwrap();
        assert_eq!(stats.congested_transfers, 1);
        assert!(stats.congestion_flits > 0);
        assert!(faulted.take_fault_injector().is_some());
    }

    #[test]
    fn link_transfers_are_traced_at_request_time() {
        let mut topo = dual();
        topo.set_trace_sink(Box::new(EventTrace::with_capacity(8)));
        topo.p2p_copy(0, 0, 96, 42).unwrap();
        let trace = topo.take_trace_sink().unwrap().into_any().downcast::<EventTrace>().unwrap();
        let records: Vec<_> = trace.iter().collect();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cycle, 42);
        assert!(matches!(
            records[0].event,
            TraceEvent::LinkTransfer { link: 0, from: 0, to: 1, flits: 3, queue_cycles: 0 }
        ));
    }

    #[test]
    fn reset_for_trial_matches_a_fresh_topology() {
        // Dirty every layer: lane horizons, cursors, stats, trace, faults.
        let mut topo = dual().with_queue_limit(1 << 40);
        topo.set_trace_sink(Box::new(EventTrace::with_capacity(8)));
        let plan = FaultPlan::new(9)
            .with_period(100)
            .with_burst(100)
            .with_kinds(FaultKinds { link: true, ..FaultKinds::none() });
        topo.set_fault_injector(FaultInjector::new(plan));
        for i in 0..8 {
            topo.p2p_copy(0, i % 2, 4096, i as u64).unwrap();
        }
        assert!(topo.stats().transfers > 0);

        topo.reset_for_trial();
        assert_eq!(topo.stats(), &TopologyStats::default());
        assert!(topo.take_trace_sink().is_none());
        assert!(topo.take_fault_injector().is_none());
        assert_eq!(topo.device_now(), 0);

        // A transfer schedule replayed after the reset is bit-identical to
        // the same schedule on a newly built topology.
        let schedule = |topo: &mut Topology| -> Vec<(u64, u64, u64)> {
            (0..16u64)
                .map(|i| {
                    let t = if i % 3 == 0 {
                        topo.p2p_copy(0, 1, 2048, i * 5).unwrap()
                    } else {
                        topo.remote_atomic(0, 0, 2, i * 5).unwrap()
                    };
                    (t.start, t.end, t.queue_cycles)
                })
                .collect()
        };
        assert_eq!(schedule(&mut topo), schedule(&mut dual()));
    }

    #[test]
    fn devices_launch_and_run_independently() {
        use gpgpu_isa::{ProgramBuilder, Reg};
        use gpgpu_spec::LaunchConfig;
        let mut topo = dual();
        let mut b = ProgramBuilder::new();
        b.mov_imm(Reg(0), 1);
        b.push_result(Reg(0));
        let program = b.build().unwrap();
        let k0 = topo
            .launch(0, 0, KernelSpec::new("a", program.clone(), LaunchConfig::new(1, 32)))
            .unwrap();
        topo.launch(1, 0, KernelSpec::new("b", program, LaunchConfig::new(1, 32))).unwrap();
        topo.run_all_until_idle(1_000_000).unwrap();
        assert!(topo.device_now() > 0);
        assert!(topo.device(0).unwrap().results(k0).is_ok());
        assert!(matches!(
            topo.launch(
                9,
                0,
                KernelSpec::new(
                    "c",
                    ProgramBuilder::new().build().unwrap(),
                    LaunchConfig::new(1, 32)
                )
            ),
            Err(SimError::UnknownDevice { .. })
        ));
    }
}
