//! Engine performance counters.
//!
//! The event-driven cycle engine earns its speedup from two sources: cycles
//! it never simulates (fast-forward to the next wake event) and SMs it never
//! visits within a simulated cycle (no warp can issue or wake there). These
//! counters make that win observable instead of asserted — the `figures`
//! report footer and the CLI `--stats` flag print them, so a regression in
//! either ratio is visible in review.

use std::fmt;

/// Counters accumulated by the cycle engine of a [`crate::Device`].
///
/// All counters are monotonically non-decreasing over a device's lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles actually simulated (one `step_cycle` each).
    pub cycles_stepped: u64,
    /// Cycles skipped entirely by fast-forwarding the clock to the next
    /// wake/arrival event when no component could make progress.
    pub cycles_fast_forwarded: u64,
    /// Per-SM step invocations executed.
    pub sm_steps: u64,
    /// Per-SM steps skipped because the SM had no warp able to issue or
    /// wake at the current cycle (event-driven mode only).
    pub sm_steps_skipped: u64,
    /// Block-placement passes executed.
    pub placement_runs: u64,
    /// Block-placement passes skipped because nothing changed since the
    /// last pass reached a fixpoint (event-driven mode only).
    pub placement_runs_skipped: u64,
    /// Blocks placed onto SMs (including re-placements after preemption).
    pub blocks_placed: u64,
    /// Blocks preempted under the SMK-preemptive policy.
    pub blocks_preempted: u64,
    /// Kernels accepted by [`crate::Device::launch`].
    pub kernels_launched: u64,
}

impl SimStats {
    /// Total cycles the device clock advanced over (simulated + skipped).
    pub fn cycles_elapsed(&self) -> u64 {
        self.cycles_stepped + self.cycles_fast_forwarded
    }

    /// Fraction of elapsed cycles that were fast-forwarded rather than
    /// simulated; 0.0 when the clock has not advanced.
    pub fn fast_forward_ratio(&self) -> f64 {
        let total = self.cycles_elapsed();
        if total == 0 {
            0.0
        } else {
            self.cycles_fast_forwarded as f64 / total as f64
        }
    }

    /// Fraction of per-SM step opportunities that were skipped; 0.0 when no
    /// SM was ever visited.
    pub fn sm_skip_ratio(&self) -> f64 {
        let total = self.sm_steps + self.sm_steps_skipped;
        if total == 0 {
            0.0
        } else {
            self.sm_steps_skipped as f64 / total as f64
        }
    }

    /// Merges another counter block into this one (used when aggregating
    /// across the many devices of a sweep).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles_stepped += other.cycles_stepped;
        self.cycles_fast_forwarded += other.cycles_fast_forwarded;
        self.sm_steps += other.sm_steps;
        self.sm_steps_skipped += other.sm_steps_skipped;
        self.placement_runs += other.placement_runs;
        self.placement_runs_skipped += other.placement_runs_skipped;
        self.blocks_placed += other.blocks_placed;
        self.blocks_preempted += other.blocks_preempted;
        self.kernels_launched += other.kernels_launched;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycles: {} stepped + {} fast-forwarded ({:.1}% skipped) | \
             SM-steps: {} run + {} skipped ({:.1}% skipped) | \
             placements: {} run + {} skipped, {} blocks placed, {} preempted | \
             {} kernels",
            self.cycles_stepped,
            self.cycles_fast_forwarded,
            self.fast_forward_ratio() * 100.0,
            self.sm_steps,
            self.sm_steps_skipped,
            self.sm_skip_ratio() * 100.0,
            self.placement_runs,
            self.placement_runs_skipped,
            self.blocks_placed,
            self.blocks_preempted,
            self.kernels_launched,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_and_merge_accumulates() {
        let mut a = SimStats::default();
        assert_eq!(a.fast_forward_ratio(), 0.0);
        assert_eq!(a.sm_skip_ratio(), 0.0);
        let b = SimStats {
            cycles_stepped: 10,
            cycles_fast_forwarded: 90,
            sm_steps: 5,
            sm_steps_skipped: 15,
            ..SimStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.cycles_elapsed(), 200);
        assert!((a.fast_forward_ratio() - 0.9).abs() < 1e-12);
        assert!((a.sm_skip_ratio() - 0.75).abs() < 1e-12);
        assert!(!a.to_string().is_empty());
    }
}
