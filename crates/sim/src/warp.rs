//! Resident warp state.

use gpgpu_isa::NUM_REGS;
use std::sync::Arc;

/// Execution state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for issue.
    Ready,
    /// Stalled on a long-latency operation until the given cycle.
    Blocked {
        /// Cycle at which the warp becomes ready again.
        until: u64,
    },
    /// Waiting at a block-level barrier for the rest of its block.
    AtBarrier,
    /// Executed `Halt`; never scheduled again.
    Halted,
}

/// One resident warp: architectural registers, PC, result buffer and
/// placement identity.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Program counter (index into the program).
    pub pc: u32,
    /// Warp-scalar register file.
    pub regs: [u64; NUM_REGS as usize],
    /// Execution state.
    pub state: WarpState,
    /// Values pushed by `PushResult`, host-visible after kernel completion.
    pub results: Vec<u64>,
    /// Total instructions executed by this warp.
    pub instructions: u64,
    /// Functional-unit operations executed.
    pub fu_ops: u64,
    /// Memory operations executed (constant, global, shared, atomic).
    pub mem_ops: u64,
    /// Which launched kernel this warp belongs to.
    pub kernel: crate::kernel::KernelId,
    /// Linear block index within the kernel's grid.
    pub block_id: u32,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Warp scheduler this warp was assigned to (round-robin by
    /// `warp_in_block`, per the paper's Section 3.1 reverse engineering).
    pub scheduler: u32,
    /// The program all warps of the kernel execute.
    pub program: Arc<gpgpu_isa::Program>,
}

impl Warp {
    /// Whether the warp can issue at cycle `now`.
    pub fn is_ready(&self, now: u64) -> bool {
        match self.state {
            WarpState::Ready => true,
            WarpState::Blocked { until } => until <= now,
            WarpState::AtBarrier | WarpState::Halted => false,
        }
    }

    /// The next cycle at which this warp could issue, if any. A warp parked
    /// at a barrier has no self-wake time — it is released by the arrival of
    /// its block's last warp, which is itself a tracked wake event.
    pub fn wake_time(&self) -> Option<u64> {
        match self.state {
            WarpState::Ready => Some(0),
            WarpState::Blocked { until } => Some(until),
            WarpState::AtBarrier | WarpState::Halted => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelId;
    use gpgpu_isa::ProgramBuilder;

    fn warp() -> Warp {
        let mut b = ProgramBuilder::new();
        b.halt();
        Warp {
            pc: 0,
            regs: [0; NUM_REGS as usize],
            state: WarpState::Ready,
            results: Vec::new(),
            instructions: 0,
            fu_ops: 0,
            mem_ops: 0,
            kernel: KernelId(0),
            block_id: 0,
            warp_in_block: 0,
            scheduler: 0,
            program: Arc::new(b.build().unwrap()),
        }
    }

    #[test]
    fn readiness_transitions() {
        let mut w = warp();
        assert!(w.is_ready(0));
        w.state = WarpState::Blocked { until: 10 };
        assert!(!w.is_ready(9));
        assert!(w.is_ready(10));
        assert_eq!(w.wake_time(), Some(10));
        w.state = WarpState::Halted;
        assert!(!w.is_ready(u64::MAX));
        assert_eq!(w.wake_time(), None);
    }
}
