//! Resident warp state, stored struct-of-arrays.
//!
//! The per-cycle hot loop touches one or two fields of many warps (the
//! issue scan reads `until`; execution reads/writes a handful of columns),
//! so warp state is laid out as parallel columns indexed by *slot* instead
//! of an array of `Warp` structs. Registers live in one flat slab
//! (`slot * NUM_REGS`), and per-scheduler membership is tracked as fixed
//! width bitsets so the issue scan is a mask iteration rather than a walk
//! over every warp context. A warp's scheduler assignment is also its
//! *sub-core* assignment: each scheduler owns one `SubCore` issue
//! partition (see `sm.rs` and `DESIGN.md` §10), so the membership bitsets
//! double as the sub-core residency sets on every generation.
//!
//! Scheduling state is encoded in the `until` column alone:
//!
//! * `0` — ready (never produced by execution: every issued instruction
//!   blocks until at least `now + 1`, so `0` only marks a freshly placed
//!   warp, whose wake time is 0 — exactly the semantics of `Ready`);
//! * `1 ..= UNTIL_AT_BARRIER - 1` — blocked until that cycle;
//! * [`UNTIL_AT_BARRIER`] — parked at a block barrier (no self-wake);
//! * [`UNTIL_HALTED`] — executed `Halt`, never scheduled again.
//!
//! `is_ready(now)` is then a single compare (`until <= now`) and
//! `wake_time` a single threshold test, with no enum dispatch in the scan.

use crate::kernel::KernelId;
use gpgpu_isa::NUM_REGS;

/// Execution state of a warp — the *view* type decoded from the packed
/// `until` column (see the module docs for the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for issue.
    Ready,
    /// Stalled on a long-latency operation until the given cycle.
    Blocked {
        /// Cycle at which the warp becomes ready again.
        until: u64,
    },
    /// Waiting at a block-level barrier for the rest of its block.
    AtBarrier,
    /// Executed `Halt`; never scheduled again.
    Halted,
}

/// `until` value marking a warp parked at a barrier.
pub(crate) const UNTIL_AT_BARRIER: u64 = u64::MAX - 1;

/// `until` value marking a halted warp.
pub(crate) const UNTIL_HALTED: u64 = u64::MAX;

/// Hard cap on simultaneously resident warps per SM, set by the width of
/// the per-scheduler membership bitsets. Real residency is bounded well
/// below this (`max_threads / 32` full warps, or `max_blocks` partial
/// ones — at most ~96 on the modelled GPUs).
pub(crate) const MAX_WARP_SLOTS: usize = 128;

/// Upper bound on warp schedulers per SM (all modelled GPUs have <= 4; the
/// fixed-size per-scheduler arrays avoid a heap allocation).
pub(crate) const MAX_SCHEDULERS: usize = 8;

const REGS: usize = NUM_REGS as usize;

/// Struct-of-arrays warp table: column `x[slot]` holds warp `slot`'s `x`.
/// Slots are dense (0..len) and removal is order-preserving, so the issue
/// scan order matches the legacy `Vec<Warp>` engine index for index.
#[derive(Debug, Default)]
pub(crate) struct WarpTable {
    /// Program counter (index into the owning kernel's program).
    pub pc: Vec<u32>,
    /// Packed scheduling state (see module docs).
    pub until: Vec<u64>,
    /// Which launched kernel each warp belongs to.
    pub kernel: Vec<KernelId>,
    /// Linear block index within the kernel's grid.
    pub block_id: Vec<u32>,
    /// Warp index within the block.
    pub warp_in_block: Vec<u32>,
    /// Warp scheduler assignment (round-robin by warp-in-block, per the
    /// paper's Section 3.1 reverse engineering, unless randomized).
    pub scheduler: Vec<u32>,
    /// Total instructions executed.
    pub instructions: Vec<u64>,
    /// Functional-unit operations executed.
    pub fu_ops: Vec<u64>,
    /// Memory operations executed (constant, global, shared, atomic).
    pub mem_ops: Vec<u64>,
    /// Values pushed by `PushResult`, harvested at block completion.
    pub results: Vec<Vec<u64>>,
    /// Flat register slab: warp `slot`'s registers are
    /// `regs[slot * NUM_REGS .. (slot + 1) * NUM_REGS]`.
    regs: Vec<u64>,
    /// Per-scheduler slot-membership bitsets (bit `s` set ⇔ warp slot `s`
    /// belongs to that scheduler).
    sched_mask: [u128; MAX_SCHEDULERS],
    /// Retired result buffers, reused by later placements so steady-state
    /// trials allocate nothing.
    spare_results: Vec<Vec<u64>>,
}

impl WarpTable {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    #[cfg(test)]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Slot-membership bitset of `scheduler`.
    #[inline]
    pub fn mask(&self, scheduler: usize) -> u128 {
        self.sched_mask[scheduler]
    }

    /// Whether warp `slot` can issue at cycle `now`.
    #[inline]
    pub fn is_ready(&self, slot: usize, now: u64) -> bool {
        self.until[slot] <= now
    }

    /// The next cycle at which warp `slot` could issue, if any. A warp
    /// parked at a barrier has no self-wake time — it is released by the
    /// arrival of its block's last warp, itself a tracked wake event.
    #[inline]
    pub fn wake_time(&self, slot: usize) -> Option<u64> {
        let u = self.until[slot];
        (u < UNTIL_AT_BARRIER).then_some(u)
    }

    /// Warp `slot`'s registers.
    #[inline]
    pub fn reg(&self, slot: usize, r: usize) -> u64 {
        self.regs[slot * REGS + r]
    }

    #[inline]
    pub fn set_reg(&mut self, slot: usize, r: usize, v: u64) {
        self.regs[slot * REGS + r] = v;
    }

    /// Decodes warp `slot`'s packed state into the view enum.
    #[cfg(test)]
    pub fn state(&self, slot: usize) -> WarpState {
        match self.until[slot] {
            0 => WarpState::Ready,
            UNTIL_AT_BARRIER => WarpState::AtBarrier,
            UNTIL_HALTED => WarpState::Halted,
            until => WarpState::Blocked { until },
        }
    }

    /// Appends a fresh warp (ready, pc 0, zeroed registers except the
    /// grid-block count conventionally preloaded into the last register)
    /// and registers it with its scheduler's bitset.
    ///
    /// # Panics
    ///
    /// Panics if the table is full ([`MAX_WARP_SLOTS`]) — unreachable for
    /// any spec-validated launch, but the bitsets must never overflow
    /// silently.
    pub fn push(
        &mut self,
        kernel: KernelId,
        block_id: u32,
        warp_in_block: u32,
        scheduler: u32,
        grid_blocks: u32,
    ) {
        let slot = self.len();
        assert!(slot < MAX_WARP_SLOTS, "warp table full ({MAX_WARP_SLOTS} slots)");
        self.pc.push(0);
        self.until.push(0);
        self.kernel.push(kernel);
        self.block_id.push(block_id);
        self.warp_in_block.push(warp_in_block);
        self.scheduler.push(scheduler);
        self.instructions.push(0);
        self.fu_ops.push(0);
        self.mem_ops.push(0);
        let mut results = self.spare_results.pop().unwrap_or_default();
        results.clear();
        self.results.push(results);
        let base = self.regs.len();
        self.regs.resize(base + REGS, 0);
        self.regs[base + REGS - 1] = u64::from(grid_blocks);
        self.sched_mask[scheduler as usize] |= 1 << slot;
    }

    /// Removes the contiguous slot range `lo..hi`, preserving the order of
    /// the remaining slots (so later warps keep their relative scan
    /// positions, exactly like `Vec::remove`). The removed slots' result
    /// buffers are recycled into the spare pool; callers harvest any live
    /// results (via `mem::swap`/`take`) *before* removing.
    pub fn remove_range(&mut self, lo: usize, hi: usize) {
        debug_assert!(lo < hi && hi <= self.len());
        let width = hi - lo;
        debug_assert!(width < 128, "no single block holds {width} warps");
        self.pc.drain(lo..hi);
        self.until.drain(lo..hi);
        self.kernel.drain(lo..hi);
        self.block_id.drain(lo..hi);
        self.warp_in_block.drain(lo..hi);
        self.scheduler.drain(lo..hi);
        self.instructions.drain(lo..hi);
        self.fu_ops.drain(lo..hi);
        self.mem_ops.drain(lo..hi);
        self.spare_results.extend(self.results.drain(lo..hi));
        self.regs.drain(lo * REGS..hi * REGS);
        // Close the gap in every membership bitset: bits below `lo` stay,
        // bits at or above `hi` shift down by `width`, bits inside the
        // range vanish.
        let keep = (1u128 << lo) - 1;
        for m in &mut self.sched_mask {
            *m = (*m & keep) | ((*m >> width) & !keep);
        }
    }

    /// Drops every warp, recycling result buffers; capacities are retained
    /// so the next trial's placements allocate nothing.
    pub fn clear(&mut self) {
        self.pc.clear();
        self.until.clear();
        self.kernel.clear();
        self.block_id.clear();
        self.warp_in_block.clear();
        self.scheduler.clear();
        self.instructions.clear();
        self.fu_ops.clear();
        self.mem_ops.clear();
        self.spare_results.append(&mut self.results);
        self.regs.clear();
        self.sched_mask = [0; MAX_SCHEDULERS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(slots: u32) -> WarpTable {
        let mut t = WarpTable::new();
        for w in 0..slots {
            t.push(KernelId(0), 0, w, w % 4, 7);
        }
        t
    }

    #[test]
    fn readiness_and_wake_follow_the_until_encoding() {
        let mut t = table_with(1);
        assert_eq!(t.state(0), WarpState::Ready);
        assert!(t.is_ready(0, 0));
        assert_eq!(t.wake_time(0), Some(0));
        t.until[0] = 10;
        assert!(!t.is_ready(0, 9));
        assert!(t.is_ready(0, 10));
        assert_eq!(t.wake_time(0), Some(10));
        assert_eq!(t.state(0), WarpState::Blocked { until: 10 });
        // The sentinels compare "not ready" against any reachable cycle
        // count (cycle budgets keep `now` far below the sentinel range).
        let far_future = u64::MAX / 4;
        t.until[0] = UNTIL_AT_BARRIER;
        assert!(!t.is_ready(0, far_future));
        assert_eq!(t.wake_time(0), None);
        assert_eq!(t.state(0), WarpState::AtBarrier);
        t.until[0] = UNTIL_HALTED;
        assert!(!t.is_ready(0, far_future));
        assert_eq!(t.wake_time(0), None);
        assert_eq!(t.state(0), WarpState::Halted);
    }

    #[test]
    fn push_seeds_registers_and_masks() {
        let t = table_with(8);
        assert_eq!(t.len(), 8);
        for s in 0..8 {
            assert_eq!(t.reg(s, 0), 0);
            assert_eq!(t.reg(s, REGS - 1), 7, "grid blocks preloaded in r63");
        }
        assert_eq!(t.mask(0), 0b0001_0001);
        assert_eq!(t.mask(1), 0b0010_0010);
        assert_eq!(t.mask(3), 0b1000_1000);
    }

    #[test]
    fn remove_range_preserves_order_and_shifts_masks() {
        let mut t = table_with(12);
        // Remove warps 4..8 (one block's worth).
        t.remove_range(4, 8);
        assert_eq!(t.len(), 8);
        let wibs: Vec<u32> = t.warp_in_block.clone();
        assert_eq!(wibs, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        // Scheduler 0 held slots {0, 4, 8}; slot 4 died, slot 8 became 4.
        assert_eq!(t.mask(0), 0b01_0001);
        // Registers moved with their slots.
        for s in 0..t.len() {
            assert_eq!(t.reg(s, REGS - 1), 7);
        }
    }

    #[test]
    fn result_buffers_are_recycled() {
        let mut t = table_with(2);
        t.results[0].extend_from_slice(&[1, 2, 3]);
        let cap = t.results[0].capacity();
        t.clear();
        assert_eq!(t.len(), 0);
        t.push(KernelId(1), 0, 0, 0, 1);
        assert!(t.results[0].is_empty());
        assert!(t.results[0].capacity() >= cap || t.results[0].capacity() == 0);
        // At least one pushed buffer reuses the retired capacity.
        t.push(KernelId(1), 0, 1, 1, 1);
        let caps: Vec<usize> = t.results.iter().map(Vec::capacity).collect();
        assert!(caps.contains(&cap), "spare pool recycles capacity {cap}, got {caps:?}");
    }
}
