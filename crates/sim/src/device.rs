//! The device: host API, block scheduler, streams and the cycle engine.

use crate::error::SimError;
use crate::fault::{FaultInjector, FaultStats};
use crate::kernel::{BlockRecord, KernelId, KernelResults, KernelSpec, KernelState};
use crate::sm::{Sm, Subsystems};
use crate::stats::SimStats;
use crate::trace::{TraceEvent, TraceSink};
use crate::tuning::EngineMode;
use crate::StreamId;
use gpgpu_isa::Instr;
use gpgpu_mem::{AtomicSystem, ConstHierarchy, GlobalMemory};
use gpgpu_spec::DeviceSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Launch-order queue of one stream's kernels with the index of its oldest
/// incomplete kernel — makes the stream-ordering half of kernel eligibility
/// O(1) instead of a rescan of every earlier kernel.
#[derive(Debug, Default, Clone)]
pub(crate) struct StreamQueue {
    /// Indices into `Device::kernels`, in launch order.
    pub(crate) kernels: Vec<usize>,
    /// Position of the oldest incomplete kernel (== `kernels.len()` when
    /// every kernel on the stream has completed).
    pub(crate) head: usize,
}

/// A simulated GPGPU device with a CUDA-stream-like host API.
///
/// See the crate-level docs for an end-to-end example. Lifecycle:
///
/// 1. [`Device::launch`] any number of kernels on streams — kernels on the
///    same stream serialize, kernels on different streams run concurrently.
/// 2. [`Device::run_until_idle`] advances the clock until every launched
///    kernel completes.
/// 3. [`Device::results`] retrieves per-block placement records and warp
///    result buffers.
#[derive(Debug)]
pub struct Device {
    pub(crate) spec: DeviceSpec,
    pub(crate) now: u64,
    pub(crate) sms: Vec<Sm>,
    pub(crate) const_mem: ConstHierarchy,
    pub(crate) atomics: AtomicSystem,
    pub(crate) gmem: GlobalMemory,
    pub(crate) kernels: Vec<KernelState>,
    /// The tuning the device was built with — [`Device::reset_for_trial`]
    /// restores construction-time settings from it.
    tuning: crate::DeviceTuning,
    /// Block-placement policy (leftover by default; see
    /// [`PlacementPolicy`] for the Section-3.2 alternatives).
    pub(crate) policy: crate::PlacementPolicy,
    /// Round-robin cursor of the leftover-policy block scheduler.
    pub(crate) rr_cursor: usize,
    /// Bump allocator for global memory (bytes).
    pub(crate) next_global: u64,
    /// Bump allocator for constant memory (bytes), way-span aligned.
    pub(crate) next_const: u64,
    pub(crate) jitter_max: u64,
    pub(crate) rng: StdRng,
    /// Cycle-engine mode (dense vs event-driven), fixed at construction.
    engine: EngineMode,
    /// Engine performance counters.
    pub(crate) stats: SimStats,
    /// Whether block placement may have new work since the last pass. Set on
    /// kernel arrival, block completion and policy change; cleared when a
    /// placement pass reaches a fixpoint without mutating any SM.
    pub(crate) placement_dirty: bool,
    /// Number of launched kernels that have not yet completed (O(1)
    /// [`Device::is_idle`]).
    pub(crate) incomplete: usize,
    /// Min-heap of future kernel-arrival times; popping due entries marks
    /// placement dirty without scanning every kernel each cycle.
    pub(crate) pending_arrivals: BinaryHeap<Reverse<u64>>,
    /// Number of kernels with blocks not yet placed (queued or future).
    /// Maintained at launch, placement and preemption so the per-cycle
    /// batching gate and `next_event_time` need no scan of the kernel
    /// table — which grows by two kernels per transmitted bit.
    pub(crate) unplaced_kernels: usize,
    /// Per-stream launch-order queues for O(1) eligibility checks.
    pub(crate) streams: HashMap<StreamId, StreamQueue>,
    /// Reusable scratch buffer for blocks finishing within a cycle (avoids a
    /// per-cycle allocation in the hot loop).
    pub(crate) finished_buf: Vec<(KernelId, BlockRecord)>,
    /// Retired [`BlockRecord`]s awaiting reuse. Drained kernels (at
    /// [`Device::reset_for_trial`]) feed it; finished-block harvesting pops
    /// from it, so a warmed-up trial loop completes blocks without
    /// allocating records or result buffers.
    record_arena: Vec<BlockRecord>,
    /// Retired per-kernel buffer pairs `(records, retry_blocks)` awaiting
    /// reuse by [`Device::launch`] — the kernel-table counterpart of
    /// `record_arena`.
    kernel_arena: Vec<(Vec<BlockRecord>, Vec<u32>)>,
    /// Scratch for the eligible-kernel ordering in `place_blocks`.
    order_buf: Vec<usize>,
    /// Optional trace sink. Every emission site is a single `Option` check
    /// when disabled — no event is even constructed.
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    /// Optional fault injector, hooked in exactly like the trace sink: a
    /// single `Option` check per site, zero cost when absent.
    pub(crate) faults: Option<FaultInjector>,
}

impl Device {
    /// Creates an idle device from its specification (no mitigations,
    /// leftover placement policy).
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_tuning(spec, crate::DeviceTuning::none())
    }

    /// Creates a device with explicit [`crate::DeviceTuning`] — placement
    /// policy and the Section-9 mitigation knobs.
    pub fn with_tuning(spec: DeviceSpec, tuning: crate::DeviceTuning) -> Self {
        let sms = (0..spec.num_sms)
            .map(|i| {
                Sm::new_tuned(
                    i,
                    spec.sm,
                    spec.architecture,
                    spec.sub_core,
                    tuning.clock_quantum(),
                    tuning.random_warp_scheduler,
                )
            })
            .collect();
        let const_mem = ConstHierarchy::new_partitioned(
            spec.num_sms,
            &spec.const_l1,
            &spec.const_l2,
            &spec.mem,
            tuning.cache_partitions,
        );
        let atomics = AtomicSystem::new(&spec.mem, spec.architecture.has_l2_atomics());
        let gmem = GlobalMemory::new(&spec.mem);
        Device {
            spec,
            now: 0,
            sms,
            const_mem,
            atomics,
            gmem,
            kernels: Vec::new(),
            tuning,
            policy: tuning.policy,
            rr_cursor: 0,
            next_global: 0x1000_0000, // distinct from constant space for clarity
            next_const: 0,
            jitter_max: 0,
            rng: StdRng::seed_from_u64(0xC0DE_C0DE),
            engine: tuning.engine,
            stats: SimStats::default(),
            placement_dirty: true,
            incomplete: 0,
            pending_arrivals: BinaryHeap::new(),
            unplaced_kernels: 0,
            streams: HashMap::new(),
            finished_buf: Vec::new(),
            record_arena: Vec::new(),
            kernel_arena: Vec::new(),
            order_buf: Vec::new(),
            trace: None,
            faults: None,
        }
    }

    /// Rewinds the device to its just-constructed state — clock zero, no
    /// kernels, cold caches, reseeded RNG — while *retaining every
    /// allocation*: warp-table columns, kernel/record buffers, cache arrays
    /// and scratch space all keep their capacity and are reused by the next
    /// trial. Observationally identical to building a fresh
    /// `Device::with_tuning(spec, tuning)` (property-tested), but free of
    /// per-trial heap traffic once warm.
    ///
    /// Mid-flight state is discarded, not completed: callers reset between
    /// trials, after the previous trial drained or failed.
    pub fn reset_for_trial(&mut self) {
        self.now = 0;
        for sm in &mut self.sms {
            sm.reset_for_trial();
        }
        self.const_mem.reset_cold();
        self.atomics.reset();
        self.gmem.reset();
        // Drain the kernel table into the arenas: the records and their
        // result buffers come back to the next trial's finished blocks, the
        // per-kernel vectors to its launches.
        let mut kernels = std::mem::take(&mut self.kernels);
        for k in kernels.drain(..) {
            let KernelState { mut records, mut retry_blocks, .. } = k;
            self.record_arena.append(&mut records);
            retry_blocks.clear();
            self.kernel_arena.push((records, retry_blocks));
        }
        self.kernels = kernels;
        self.policy = self.tuning.policy;
        self.rr_cursor = 0;
        self.next_global = 0x1000_0000;
        self.next_const = 0;
        self.jitter_max = 0;
        self.rng = StdRng::seed_from_u64(0xC0DE_C0DE);
        self.stats = SimStats::default();
        self.placement_dirty = true;
        self.incomplete = 0;
        self.pending_arrivals.clear();
        self.unplaced_kernels = 0;
        // Keep the stream map's entries (and their vectors' capacity);
        // an empty queue is indistinguishable from an absent one.
        for q in self.streams.values_mut() {
            q.kernels.clear();
            q.head = 0;
        }
        self.finished_buf.clear();
        self.trace = None;
        self.faults = None;
    }

    /// Returns one retired kernel's buffers to the per-trial arenas (the
    /// records feed `record_arena`, the emptied vectors `kernel_arena`).
    pub(crate) fn recycle_kernel_buffers(
        &mut self,
        mut records: Vec<BlockRecord>,
        retry_blocks: Vec<u32>,
    ) {
        self.record_arena.append(&mut records);
        self.kernel_arena.push((records, retry_blocks));
    }

    /// Installs a trace sink; subsequent simulation emits
    /// [`TraceEvent`]s into it. Replaces any previous sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any. Use
    /// [`TraceSink::into_any`] to downcast it back to its concrete type:
    ///
    /// ```
    /// use gpgpu_sim::{Device, EventTrace};
    /// use gpgpu_spec::presets;
    ///
    /// let mut dev = Device::new(presets::tesla_k40c());
    /// dev.set_trace_sink(Box::new(EventTrace::default()));
    /// let trace =
    ///     dev.take_trace_sink().unwrap().into_any().downcast::<EventTrace>().unwrap();
    /// assert!(trace.is_empty());
    /// ```
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Installs a fault injector; subsequent simulation is perturbed
    /// according to its [`crate::FaultPlan`]. Replaces any previous
    /// injector. Install before launching kernels so launch-skew faults see
    /// every launch.
    ///
    /// ```
    /// use gpgpu_sim::{Device, FaultInjector, FaultPlan};
    /// use gpgpu_spec::presets;
    ///
    /// let mut dev = Device::new(presets::tesla_k40c());
    /// dev.set_fault_injector(FaultInjector::new(FaultPlan::new(7)));
    /// assert_eq!(dev.fault_stats().unwrap().total_events(), 0);
    /// ```
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Removes and returns the installed fault injector, if any (its
    /// [`FaultStats`] record what was delivered).
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// Counters of the faults delivered so far, when an injector is
    /// installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|f| f.stats())
    }

    /// Diagnostic names of every launched kernel, indexed by kernel id —
    /// the name table [`crate::chrome_trace_json`] wants.
    pub fn kernel_names(&self) -> Vec<String> {
        self.kernels.iter().map(|k| k.spec.name.to_string()).collect()
    }

    /// Borrowed diagnostic name of one launched kernel.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownKernel`] for an id not launched here.
    pub fn kernel_name(&self, id: KernelId) -> Result<&str, SimError> {
        self.kernels.get(id.0 as usize).map(|k| &*k.spec.name).ok_or(SimError::UnknownKernel(id))
    }

    /// Engine performance counters accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The device specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Selects the block-placement policy. Call before launching kernels;
    /// switching policies mid-flight is allowed but blocks already placed
    /// stay where they are.
    pub fn set_placement_policy(&mut self, policy: crate::PlacementPolicy) {
        self.policy = policy;
        self.placement_dirty = true;
    }

    /// The active placement policy.
    pub fn placement_policy(&self) -> crate::PlacementPolicy {
        self.policy
    }

    /// Contention-anomaly counters of the constant-cache hierarchy:
    /// `(cross_domain_evictions, eviction_alternations)`. The alternation
    /// count is the CC-Hunter-style detection signal of the paper's
    /// Section 9 — near zero under benign sharing, large when two kernels
    /// ping-pong evictions to signal bits.
    pub fn cache_contention_counters(&self) -> (u64, u64) {
        (self.const_mem.cross_domain_evictions(), self.const_mem.eviction_alternations())
    }

    /// Enables random launch-arrival jitter of up to `max_cycles`, seeded
    /// deterministically. This models the host-side scheduling variability
    /// that makes the paper's *unsynchronized* channels lose bit alignment
    /// when the per-bit iteration count is reduced (Figure 5).
    pub fn set_launch_jitter(&mut self, max_cycles: u64, seed: u64) {
        self.jitter_max = max_cycles;
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Allocates `bytes` of global memory, returning the base address.
    /// 256-byte aligned so distinct arrays never share a coalescing segment.
    pub fn alloc_global(&mut self, bytes: u64) -> u64 {
        let base = self.next_global;
        self.next_global += bytes.div_ceil(256) * 256 + 256;
        base
    }

    /// Allocates `bytes` of constant memory, returning the base address.
    /// Aligned to the L1 way span so every allocation starts at set 0 —
    /// which is also how `cudaMemcpyToSymbol` arrays end up aligned in
    /// practice, and why the spy's and trojan's arrays collide in the cache
    /// even though they are distinct allocations.
    pub fn alloc_constant(&mut self, bytes: u64) -> u64 {
        let span =
            self.spec.const_l1.geometry.same_set_stride() * self.spec.const_l1.geometry.ways();
        let base = self.next_const;
        self.next_const += bytes.div_ceil(span).max(1) * span;
        base
    }

    /// Submits a kernel on `stream`. The kernel's blocks become eligible for
    /// placement after the launch overhead (plus jitter, if enabled) and
    /// after every earlier kernel on the same stream has completed.
    ///
    /// # Errors
    ///
    /// * [`SimError::Launch`] if the launch configuration cannot fit on this
    ///   device or the program uses an unavailable unit class (e.g.
    ///   double-precision on Maxwell).
    pub fn launch(&mut self, stream: StreamId, spec: KernelSpec) -> Result<KernelId, SimError> {
        spec.launch.validate(&self.spec.sm)?;
        for instr in spec.program.iter() {
            if let Instr::Fu { op } = instr {
                self.spec.supports_op(*op)?;
            }
        }
        let jitter = if self.jitter_max > 0 { self.rng.gen_range(0..=self.jitter_max) } else { 0 };
        let id = KernelId(self.kernels.len() as u32);
        let idx = self.kernels.len();
        let grid = spec.launch.grid_blocks as usize;
        let skew = self.faults.as_mut().map_or(0, |f| f.launch_skew(id.0));
        let arrival = self.now + self.spec.launch_overhead_cycles + jitter + skew;
        // Reuse a retired kernel's buffers when the arena has one.
        let (mut records, retry_blocks) = self.kernel_arena.pop().unwrap_or_default();
        records.reserve(grid);
        self.kernels.push(KernelState {
            spec,
            stream,
            submitted_at: self.now,
            arrival,
            next_block: 0,
            retry_blocks,
            blocks_done: 0,
            records,
            completed_at: None,
        });
        self.incomplete += 1;
        if !self.kernels[idx].all_blocks_placed() {
            self.unplaced_kernels += 1;
        }
        self.pending_arrivals.push(Reverse(arrival));
        let queue = self.streams.entry(stream).or_default();
        queue.kernels.push(idx);
        self.stats.kernels_launched += 1;
        if let Some(t) = self.trace.as_mut() {
            t.record(self.now, TraceEvent::KernelLaunch { kernel: id.0, stream, arrival });
        }
        Ok(id)
    }

    /// Whether every launched kernel has completed.
    pub fn is_idle(&self) -> bool {
        self.incomplete == 0
    }

    /// Advances the clock until the device is idle, or errors after
    /// `max_cycles` additional cycles.
    ///
    /// # Errors
    ///
    /// * [`SimError::CycleLimitExceeded`] if the workload does not drain in
    ///   time (including protocol deadlocks in covert-channel handshakes).
    /// * [`SimError::SchedulerStuck`] if queued blocks can never be placed.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Result<(), SimError> {
        let limit = self.now.saturating_add(max_cycles);
        while !self.is_idle() {
            if self.now >= limit {
                return Err(SimError::CycleLimitExceeded { limit });
            }
            // Batching may run a solo warp ahead through cycles `< limit`;
            // that is safe *here* because this loop only returns once the
            // device is idle — every batched instruction would have been
            // executed at the identical cycle before the next API call can
            // observe or perturb the device.
            let worked = self.step_cycle(limit);
            if worked {
                self.now += 1;
            } else {
                // Clamp fast-forward to the budget so CycleLimitExceeded
                // fires at the same cycle as in the dense engine; the loop
                // guard guarantees `now + 1 <= limit` here.
                let target = self.next_event_time()?.max(self.now + 1).min(limit);
                self.stats.cycles_fast_forwarded += target - (self.now + 1);
                self.now = target;
            }
        }
        Ok(())
    }

    /// Runs exactly one cycle (also placing any eligible blocks). Primarily
    /// for tests that need cycle-level control — so no batching: exactly
    /// one cycle's work happens, in either engine mode.
    pub fn step(&mut self) {
        self.step_cycle(self.now + 1);
        self.now += 1;
    }

    /// Advances the clock until the given kernel completes, leaving other
    /// kernels (e.g. a long-running interference workload) in flight.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownKernel`] for an id not launched here.
    /// * [`SimError::CycleLimitExceeded`] / [`SimError::SchedulerStuck`] as
    ///   for [`Device::run_until_idle`].
    pub fn run_until_complete(&mut self, id: KernelId, max_cycles: u64) -> Result<(), SimError> {
        if self.kernels.get(id.0 as usize).is_none() {
            return Err(SimError::UnknownKernel(id));
        }
        let limit = self.now.saturating_add(max_cycles);
        while !self.kernels[id.0 as usize].is_complete() {
            if self.now >= limit {
                return Err(SimError::CycleLimitExceeded { limit });
            }
            // No batching here: this loop hands control back with *other*
            // kernels still in flight, and a subsequent launch could place
            // blocks into cycles a batch would already have consumed. The
            // `now + 1` bound keeps every surviving warp exactly at the
            // cycle the dense engine would leave it.
            let worked = self.step_cycle(self.now + 1);
            if worked {
                self.now += 1;
            } else {
                // Same budget clamp as `run_until_idle`: never fast-forward
                // past the limit.
                let target = self.next_event_time()?.max(self.now + 1).min(limit);
                self.stats.cycles_fast_forwarded += target - (self.now + 1);
                self.now = target;
            }
        }
        Ok(())
    }

    /// Retrieves the results of a completed kernel.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownKernel`] for an id not launched here.
    /// * [`SimError::KernelNotComplete`] if it has not finished.
    pub fn results(&self, id: KernelId) -> Result<KernelResults, SimError> {
        // Records are sorted by block id exactly once, at kernel completion,
        // so this is a plain clone — no per-call re-sort.
        let k = self.kernels.get(id.0 as usize).ok_or(SimError::UnknownKernel(id))?;
        let completed_at = k.completed_at.ok_or(SimError::KernelNotComplete(id))?;
        Ok(KernelResults {
            id,
            name: k.spec.name.clone(),
            submitted_at: k.submitted_at,
            arrived_at: k.arrival,
            completed_at,
            blocks: k.records.clone(),
        })
    }

    /// Borrowed view of a completed kernel's per-block records, sorted by
    /// block id — the zero-copy alternative to [`Device::results`] for sweeps
    /// that read thousands of kernels.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownKernel`] for an id not launched here.
    /// * [`SimError::KernelNotComplete`] if it has not finished.
    pub fn block_records(&self, id: KernelId) -> Result<&[BlockRecord], SimError> {
        let k = self.kernels.get(id.0 as usize).ok_or(SimError::UnknownKernel(id))?;
        if k.completed_at.is_none() {
            return Err(SimError::KernelNotComplete(id));
        }
        Ok(&k.records)
    }

    // ---- engine internals ------------------------------------------------

    fn kernel_eligible(&self, idx: usize) -> bool {
        let k = &self.kernels[idx];
        if k.all_blocks_placed() || k.arrival > self.now {
            return false;
        }
        // Stream ordering: every earlier kernel on the same stream must have
        // completed, i.e. this kernel is the stream's oldest incomplete one.
        // Within a stream completion order equals launch order, so the head
        // index (advanced at each completion) answers this in O(1).
        let queue = &self.streams[&k.stream];
        queue.kernels.get(queue.head) == Some(&idx)
    }

    /// Advances a stream queue's head past every completed kernel. Called at
    /// each kernel completion; launches are never complete on arrival
    /// (`LaunchConfig::validate` rejects zero-block grids).
    fn advance_stream_head(&mut self, stream: StreamId) {
        let kernels = &self.kernels;
        if let Some(queue) = self.streams.get_mut(&stream) {
            while queue.kernels.get(queue.head).is_some_and(|&i| kernels[i].is_complete()) {
                queue.head += 1;
            }
        }
    }

    /// Whether `sm` may host a block of `kernel` with resources `res` under
    /// the active placement policy.
    fn sm_admits(&self, sm: usize, kernel: KernelId, res: &gpgpu_spec::BlockResources) -> bool {
        if !self.sms[sm].block_fits(res) {
            return false;
        }
        match self.policy {
            crate::PlacementPolicy::InterSmPartition => {
                // Whole-SM granularity: no intra-SM sharing between kernels.
                !self.sms[sm].hosts_other_kernel(kernel)
            }
            _ => true,
        }
    }

    /// Chooses the target SM for a block of `kernel` under the active
    /// policy, or `None` when nothing admits it.
    fn choose_sm(&self, kernel: KernelId, res: &gpgpu_spec::BlockResources) -> Option<usize> {
        let n = self.sms.len();
        match self.policy {
            crate::PlacementPolicy::WarpedSlicer => {
                // Best-fit: the admitting SM with the most free capacity
                // (Xu et al.'s compatibility-driven intra-SM partitioning).
                (0..n).filter(|&sm| self.sm_admits(sm, kernel, res)).max_by(|&a, &b| {
                    self.sms[a].free_capacity_score().total_cmp(&self.sms[b].free_capacity_score())
                })
            }
            _ => {
                // Round-robin first fit (leftover policy and friends).
                (0..n)
                    .map(|off| (self.rr_cursor + off) % n)
                    .find(|&sm| self.sm_admits(sm, kernel, res))
            }
        }
    }

    /// SMK preemption (Wang et al.): find an SM where evicting the highest
    /// -usage block of a multi-block kernel makes room for `res`.
    fn try_preempt_for(
        &mut self,
        kernel: KernelId,
        res: &gpgpu_spec::BlockResources,
    ) -> Option<usize> {
        let n = self.sms.len();
        for off in 0..n {
            let sm = (self.rr_cursor + off) % n;
            if let Some((victim_kernel, victim_block)) = self.sms[sm].preemption_victim(kernel) {
                self.sms[sm].preempt_block(victim_kernel, victim_block);
                let vk = &mut self.kernels[victim_kernel.0 as usize];
                if vk.all_blocks_placed() {
                    self.unplaced_kernels += 1;
                }
                vk.push_back_block(victim_block);
                self.stats.blocks_preempted += 1;
                if let Some(t) = self.trace.as_mut() {
                    t.record(
                        self.now,
                        TraceEvent::BlockPreempted {
                            kernel: victim_kernel.0,
                            block: victim_block,
                            sm: sm as u32,
                        },
                    );
                }
                if self.sm_admits(sm, kernel, res) {
                    return Some(sm);
                }
                // Preemption did not make enough room; the victim restarts
                // later either way (as on real SMK, preemption decisions
                // are not transactional).
            }
        }
        None
    }

    /// Places queued blocks according to the active policy: kernels in
    /// arrival order, each block onto an admitting SM. Returns whether the
    /// pass mutated any SM (placed or preempted a block); a pass with no
    /// mutation is a fixpoint, so the caller may skip placement until the
    /// next arrival / completion / policy change re-dirties it.
    fn place_blocks(&mut self) -> bool {
        let mut mutated = false;
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        order.extend((0..self.kernels.len()).filter(|&i| self.kernel_eligible(i)));
        // Unstable sort is exact here: the index in the key makes it total.
        order.sort_unstable_by_key(|&i| (self.kernels[i].arrival, i));
        for &ki in &order {
            let kernel = KernelId(ki as u32);
            // Hoisted out of the per-block loop: block resources, grid size
            // and the program Arc are launch-time constants of the kernel.
            let res = self.kernels[ki].spec.launch.block;
            let grid = self.kernels[ki].spec.launch.grid_blocks;
            let program = std::sync::Arc::clone(&self.kernels[ki].spec.program);
            let was_unplaced = !self.kernels[ki].all_blocks_placed();
            'blocks: while !self.kernels[ki].all_blocks_placed() {
                let mut target = self.choose_sm(kernel, &res);
                if target.is_none() && self.policy == crate::PlacementPolicy::SmkPreemptive {
                    let before = self.stats.blocks_preempted;
                    target = self.try_preempt_for(kernel, &res);
                    mutated |= self.stats.blocks_preempted != before;
                }
                match target {
                    Some(sm) => {
                        let block_id =
                            self.kernels[ki].pop_next_block().expect("unplaced blocks remain");
                        self.sms[sm].place_block(kernel, block_id, grid, res, &program, self.now);
                        self.rr_cursor = (sm + 1) % self.sms.len();
                        self.stats.blocks_placed += 1;
                        mutated = true;
                        if let Some(t) = self.trace.as_mut() {
                            t.record(
                                self.now,
                                TraceEvent::BlockPlaced {
                                    kernel: kernel.0,
                                    block: block_id,
                                    sm: sm as u32,
                                },
                            );
                        }
                    }
                    None => break 'blocks, // queue the rest until resources free
                }
            }
            if was_unplaced && self.kernels[ki].all_blocks_placed() {
                self.unplaced_kernels -= 1;
            }
        }
        self.order_buf = order;
        debug_assert_eq!(
            self.unplaced_kernels,
            self.kernels.iter().filter(|k| !k.all_blocks_placed()).count(),
            "unplaced-kernel counter drifted from the kernel table"
        );
        mutated
    }

    fn step_cycle(&mut self, batch_limit: u64) -> bool {
        // Drain arrivals that have come due; each one is new placement work.
        while self.pending_arrivals.peek().is_some_and(|&Reverse(t)| t <= self.now) {
            self.pending_arrivals.pop();
            self.placement_dirty = true;
        }
        let dense = self.engine == EngineMode::Dense;
        if dense || self.placement_dirty {
            self.stats.placement_runs += 1;
            let mutated = self.place_blocks();
            self.placement_dirty = mutated;
        } else {
            self.stats.placement_runs_skipped += 1;
        }
        // Pure-ALU batching (see `Sm::execute`) is sound only while the
        // whole span is free of cross-agent events: no trace sink (batched
        // visits would reorder the ring across SMs), no kernel arrival or
        // queued block that placement could drop onto a scheduler
        // mid-span, and never in dense mode (the reference engine). The
        // caller's `batch_limit` additionally bounds the span to its run
        // budget; `now + 1` disables batching outright.
        let batch_until = if dense
            || batch_limit <= self.now + 1
            || self.trace.is_some()
            || self.placement_dirty
            || !self.pending_arrivals.is_empty()
            || self.unplaced_kernels > 0
        {
            self.now + 1
        } else {
            batch_limit
        };
        let mut worked = false;
        let mut subs = Subsystems {
            const_mem: &mut self.const_mem,
            atomics: &mut self.atomics,
            gmem: &mut self.gmem,
            trace: self.trace.as_deref_mut(),
            faults: self.faults.as_mut(),
        };
        let mut finished = std::mem::take(&mut self.finished_buf);
        let mut arena = std::mem::take(&mut self.record_arena);
        let now = self.now;
        for sm in &mut self.sms {
            // Skipping an SM whose earliest wake lies in the future is
            // provably a no-op: no warp can issue, the scheduler cursors do
            // not move, and no block can finish there this cycle.
            if !dense && !sm.has_work_at(now) {
                self.stats.sm_steps_skipped += 1;
                continue;
            }
            self.stats.sm_steps += 1;
            worked |= sm.step(now, &mut subs, &mut finished, &mut arena, !dense, batch_until);
        }
        self.record_arena = arena;
        for (kernel, record) in finished.drain(..) {
            if let Some(t) = self.trace.as_mut() {
                t.record(
                    now,
                    TraceEvent::BlockFinished {
                        kernel: kernel.0,
                        block: record.block_id,
                        sm: record.sm_id,
                    },
                );
            }
            let k = &mut self.kernels[kernel.0 as usize];
            k.records.push(record);
            k.blocks_done += 1;
            if k.is_complete() {
                // Sort the records exactly once, here, so `results` /
                // `block_records` never re-sort. Block ids are unique, so
                // the unstable sort is deterministic.
                k.records.sort_unstable_by_key(|b| b.block_id);
                k.completed_at = Some(now);
                self.incomplete -= 1;
                let stream = k.stream;
                self.advance_stream_head(stream);
                if let Some(t) = self.trace.as_mut() {
                    t.record(now, TraceEvent::KernelComplete { kernel: kernel.0 });
                }
            }
            // A freed block may unblock queued placements.
            self.placement_dirty = true;
            worked = true;
        }
        self.finished_buf = finished;
        self.stats.cycles_stepped += 1;
        worked
    }

    fn next_event_time(&self) -> Result<u64, SimError> {
        let mut next: Option<u64> = None;
        for sm in &self.sms {
            if let Some(t) = sm.next_wake(self.now + 1) {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        }
        // The kernel scan matters only while some kernel still has blocks to
        // place; the O(1) counter skips it for the (typical) fully-placed
        // steady state, where the table may hold a hundred completed kernels.
        if self.unplaced_kernels > 0 {
            for (i, k) in self.kernels.iter().enumerate() {
                if !k.all_blocks_placed() && k.arrival > self.now {
                    // Future arrival.
                    next = Some(next.map_or(k.arrival, |n| n.min(k.arrival)));
                } else if !k.all_blocks_placed() && self.kernel_eligible(i) {
                    // Eligible but queued: progress requires a block
                    // completion, i.e. a warp wake, already accounted above.
                    // If no warp is live anywhere, the scheduler is stuck.
                    if self.sms.iter().all(|sm| sm.next_wake(self.now).is_none()) {
                        return Err(SimError::SchedulerStuck);
                    }
                }
            }
        }
        next.ok_or(SimError::SchedulerStuck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_isa::{Cond, Operand, ProgramBuilder, Reg, Special};
    use gpgpu_spec::{presets, FuOpKind, LaunchConfig};

    fn smid_probe() -> gpgpu_isa::Program {
        let mut b = ProgramBuilder::new();
        b.read_special(Reg(0), Special::SmId);
        b.push_result(Reg(0));
        b.build().unwrap()
    }

    #[test]
    fn first_kernel_blocks_placed_round_robin() {
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev
            .launch(0, KernelSpec::new("probe", smid_probe(), LaunchConfig::new(15, 128)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let r = dev.results(k).unwrap();
        // 15 blocks over 15 SMs: one each, in round-robin order.
        let sms: Vec<u32> = r.blocks.iter().map(|b| b.sm_id).collect();
        assert_eq!(sms, (0..15).collect::<Vec<u32>>());
        // Every block observed its own smid.
        for b in &r.blocks {
            assert_eq!(b.warp_results[0], vec![u64::from(b.sm_id)]);
        }
    }

    #[test]
    fn two_kernels_colocate_via_leftover_policy() {
        // The paper's Section 3.1 recipe: both kernels launch num_sms blocks
        // of 4 warps; every SM ends up hosting one block of each.
        let mut dev = Device::new(presets::tesla_k40c());
        let a = dev
            .launch(0, KernelSpec::new("spy", smid_probe(), LaunchConfig::new(15, 128)))
            .unwrap();
        let b = dev
            .launch(1, KernelSpec::new("trojan", smid_probe(), LaunchConfig::new(15, 128)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let (ra, rb) = (dev.results(a).unwrap(), dev.results(b).unwrap());
        assert_eq!(ra.sms_used(), (0..15).collect::<Vec<u32>>());
        assert_eq!(rb.sms_used(), (0..15).collect::<Vec<u32>>());
    }

    #[test]
    fn oversubscribed_blocks_queue_until_release() {
        // Kernel A saturates every SM's shared memory; kernel B's blocks
        // (which also want shared memory) must wait for A to finish.
        let mut dev = Device::new(presets::tesla_k40c());
        // A long-ish program so A is clearly still running when B arrives.
        let mut pb = ProgramBuilder::new();
        pb.repeat(Reg(1), 200, |b| {
            b.fu(FuOpKind::SpSinf);
        });
        let long = pb.build().unwrap();
        let a = dev
            .launch(
                0,
                KernelSpec::new("hog", long, LaunchConfig::new(15, 128).with_shared_mem(48 * 1024)),
            )
            .unwrap();
        let b = dev
            .launch(
                1,
                KernelSpec::new(
                    "late",
                    smid_probe(),
                    LaunchConfig::new(1, 32).with_shared_mem(1024),
                ),
            )
            .unwrap();
        dev.run_until_idle(10_000_000).unwrap();
        let (ra, rb) = (dev.results(a).unwrap(), dev.results(b).unwrap());
        let a_first_end = ra.blocks.iter().map(|bl| bl.end_cycle).min().unwrap();
        let b_start = rb.blocks[0].start_cycle;
        assert!(
            b_start >= a_first_end,
            "B placed at {b_start}, before any A block finished at {a_first_end}"
        );
    }

    #[test]
    fn same_stream_kernels_serialize() {
        let mut dev = Device::new(presets::tesla_k40c());
        let a = dev
            .launch(0, KernelSpec::new("first", smid_probe(), LaunchConfig::new(1, 32)))
            .unwrap();
        let b = dev
            .launch(0, KernelSpec::new("second", smid_probe(), LaunchConfig::new(1, 32)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let (ra, rb) = (dev.results(a).unwrap(), dev.results(b).unwrap());
        assert!(rb.blocks[0].start_cycle >= ra.completed_at);
    }

    #[test]
    fn clock_measures_const_load_latency() {
        let mut dev = Device::new(presets::tesla_k40c());
        let addr = dev.alloc_constant(64);
        let mut b = ProgramBuilder::new();
        let (ra, t0, t1) = (Reg(0), Reg(1), Reg(2));
        b.mov_imm(ra, addr);
        b.const_load(ra); // warm: memory-level fill
        b.read_clock(t0);
        b.const_load(ra); // timed: L1 hit
        b.read_clock(t1);
        b.sub(t1, t1, t0);
        b.push_result(t1);
        let k = dev
            .launch(0, KernelSpec::new("timer", b.build().unwrap(), LaunchConfig::new(1, 32)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let r = dev.results(k).unwrap();
        let measured = r.blocks[0].warp_results[0][0];
        // L1 hit is 49 cycles; the clock reads straddle the issue cycles, so
        // allow a small skew.
        assert!((49..=52).contains(&measured), "measured {measured}");
    }

    #[test]
    fn cycle_limit_is_reported() {
        let mut dev = Device::new(presets::tesla_k40c());
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.fu(FuOpKind::SpAdd);
        b.jump(top); // infinite loop
        dev.launch(0, KernelSpec::new("spin", b.build().unwrap(), LaunchConfig::new(1, 32)))
            .unwrap();
        assert!(matches!(dev.run_until_idle(10_000), Err(SimError::CycleLimitExceeded { .. })));
    }

    #[test]
    fn fast_forward_never_overshoots_the_budget() {
        // The K40C launch overhead is 15 000 cycles; with a 10 000-cycle
        // budget the event-driven engine would previously fast-forward
        // straight to the arrival (cycle 15 000) and report the limit from
        // there. Both run methods must stop exactly at the limit.
        let spin = || {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.bind(top);
            b.fu(FuOpKind::SpAdd);
            b.jump(top);
            b.build().unwrap()
        };
        let mut dev = Device::new(presets::tesla_k40c());
        dev.launch(0, KernelSpec::new("spin", spin(), LaunchConfig::new(1, 32))).unwrap();
        assert_eq!(dev.run_until_idle(10_000), Err(SimError::CycleLimitExceeded { limit: 10_000 }));
        assert_eq!(dev.now(), 10_000, "clock must stop at the budget, not past it");

        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev.launch(0, KernelSpec::new("spin", spin(), LaunchConfig::new(1, 32))).unwrap();
        assert_eq!(
            dev.run_until_complete(k, 10_000),
            Err(SimError::CycleLimitExceeded { limit: 10_000 })
        );
        assert_eq!(dev.now(), 10_000);
    }

    #[test]
    fn double_precision_rejected_on_maxwell() {
        let mut dev = Device::new(presets::quadro_m4000());
        let mut b = ProgramBuilder::new();
        b.fu(FuOpKind::DpAdd);
        let err = dev
            .launch(0, KernelSpec::new("dp", b.build().unwrap(), LaunchConfig::new(1, 32)))
            .unwrap_err();
        assert!(matches!(err, SimError::Launch(_)));
    }

    #[test]
    fn launch_jitter_is_deterministic_per_seed() {
        let arrivals = |seed: u64| -> Vec<u64> {
            let mut dev = Device::new(presets::tesla_k40c());
            dev.set_launch_jitter(3000, seed);
            let mut out = Vec::new();
            for _ in 0..4 {
                let k = dev
                    .launch(0, KernelSpec::new("k", smid_probe(), LaunchConfig::new(1, 32)))
                    .unwrap();
                out.push(k);
            }
            dev.run_until_idle(10_000_000).unwrap();
            out.iter().map(|&k| dev.results(k).unwrap().arrived_at).collect()
        };
        assert_eq!(arrivals(7), arrivals(7));
        assert_ne!(arrivals(7), arrivals(8));
    }

    #[test]
    fn results_errors() {
        let mut dev = Device::new(presets::tesla_k40c());
        assert!(matches!(dev.results(KernelId(0)), Err(SimError::UnknownKernel(_))));
        let k =
            dev.launch(0, KernelSpec::new("k", smid_probe(), LaunchConfig::new(1, 32))).unwrap();
        assert!(matches!(dev.results(k), Err(SimError::KernelNotComplete(_))));
    }

    #[test]
    fn branch_loop_executes_correct_iteration_count() {
        let mut dev = Device::new(presets::tesla_k40c());
        let mut b = ProgramBuilder::new();
        let (i, acc) = (Reg(0), Reg(1));
        b.mov_imm(acc, 0);
        b.mov_imm(i, 10);
        let top = b.label();
        b.bind(top);
        b.add_imm(acc, acc, 3);
        b.add_imm(i, i, u64::MAX);
        b.branch(Cond::Ne, i, Operand::Imm(0), top);
        b.push_result(acc);
        let k = dev
            .launch(0, KernelSpec::new("loop", b.build().unwrap(), LaunchConfig::new(1, 32)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        assert_eq!(dev.results(k).unwrap().flat_results(), vec![30]);
    }

    #[test]
    fn trace_sink_observes_kernel_lifecycle() {
        use crate::trace::{EventTrace, TraceEvent};
        let mut dev = Device::new(presets::tesla_k40c());
        dev.set_trace_sink(Box::new(EventTrace::default()));
        let mut b = ProgramBuilder::new();
        b.mov_imm(Reg(0), 64);
        b.const_load(Reg(0));
        b.push_result(Reg(0));
        dev.launch(0, KernelSpec::new("probe", b.build().unwrap(), LaunchConfig::new(2, 64)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        assert_eq!(dev.kernel_names(), vec!["probe".to_string()]);
        let mut trace = dev.take_trace_sink().unwrap().into_any().downcast::<EventTrace>().unwrap();
        let events = trace.take_events();
        assert!(!events.is_empty());
        // Cycle stamps are non-decreasing.
        for w in events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "{:?} after {:?}", w[1], w[0]);
        }
        let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|r| f(&r.event)).count();
        assert_eq!(count(&|e| matches!(e, TraceEvent::KernelLaunch { kernel: 0, .. })), 1);
        assert_eq!(count(&|e| matches!(e, TraceEvent::KernelComplete { kernel: 0 })), 1);
        assert_eq!(count(&|e| matches!(e, TraceEvent::BlockPlaced { .. })), 2);
        assert_eq!(count(&|e| matches!(e, TraceEvent::BlockFinished { .. })), 2);
        // 2 blocks x 2 warps, one const load each.
        assert_eq!(count(&|e| matches!(e, TraceEvent::ConstAccess { .. })), 4);
        assert!(count(&|e| matches!(e, TraceEvent::WarpIssue { .. })) >= 4);
        // Untraced device still runs (the disabled path).
        assert!(dev.take_trace_sink().is_none());
    }

    #[test]
    fn fault_injection_is_engine_equivalent_and_observable() {
        use crate::fault::{FaultInjector, FaultKinds, FaultPlan};
        use crate::tuning::{DeviceTuning, EngineMode};
        // A probe that repeatedly walks the target set and times a probe
        // load — sensitive to every fault kind.
        let probe = || {
            let mut b = ProgramBuilder::new();
            let (a, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
            b.repeat(Reg(20), 40, |b| {
                b.mov_imm(a, 2 * 64); // set 2
                b.read_clock(t0);
                b.const_load(a);
                b.read_clock(t1);
                b.sub(lat, t1, t0);
                b.push_result(lat);
            });
            b.build().unwrap()
        };
        let plan =
            FaultPlan::new(17).with_period(2_000).with_burst(700).with_kinds(FaultKinds::all());
        let run = |engine: EngineMode| -> (Vec<u64>, crate::fault::FaultStats) {
            let tuning = DeviceTuning { engine, ..DeviceTuning::none() };
            let mut dev = Device::with_tuning(presets::tesla_k40c(), tuning);
            dev.set_fault_injector(FaultInjector::new(plan));
            let k =
                dev.launch(0, KernelSpec::new("probe", probe(), LaunchConfig::new(2, 64))).unwrap();
            dev.run_until_idle(10_000_000).unwrap();
            (dev.results(k).unwrap().flat_results(), *dev.fault_stats().unwrap())
        };
        let (dense_r, dense_s) = run(EngineMode::Dense);
        let (event_r, event_s) = run(EngineMode::EventDriven);
        assert_eq!(dense_r, event_r, "fault-injected results must be engine-equivalent");
        assert_eq!(dense_s, event_s, "delivered faults must be engine-equivalent");
        assert!(dense_s.total_events() > 0, "the plan should actually deliver faults");
        // Injector lifecycle mirrors the trace sink's.
        let mut dev = Device::new(presets::tesla_k40c());
        assert!(dev.take_fault_injector().is_none());
        dev.set_fault_injector(FaultInjector::new(plan));
        assert!(dev.take_fault_injector().is_some());
        assert!(dev.fault_stats().is_none());
    }

    #[test]
    fn alloc_constant_is_way_span_aligned() {
        let mut dev = Device::new(presets::tesla_k40c());
        let a = dev.alloc_constant(64);
        let b = dev.alloc_constant(2048);
        let span =
            dev.spec().const_l1.geometry.same_set_stride() * dev.spec().const_l1.geometry.ways();
        assert_eq!(a % span, 0);
        assert_eq!(b % span, 0);
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::PlacementPolicy;
    use gpgpu_isa::{ProgramBuilder, Reg, Special};
    use gpgpu_spec::{presets, FuOpKind, LaunchConfig};

    fn busy_probe(iters: u64) -> gpgpu_isa::Program {
        let mut b = ProgramBuilder::new();
        b.read_special(Reg(0), Special::SmId);
        b.push_result(Reg(0));
        b.repeat(Reg(20), iters, |b| {
            b.fu(FuOpKind::SpAdd);
        });
        b.build().unwrap()
    }

    #[test]
    fn inter_sm_partition_keeps_kernels_on_disjoint_sms() {
        let mut dev = Device::new(presets::tesla_k40c());
        dev.set_placement_policy(PlacementPolicy::InterSmPartition);
        // 8 blocks each: under partitioning the two kernels may not share
        // any SM even though every SM has leftover capacity.
        let a =
            dev.launch(0, KernelSpec::new("a", busy_probe(300), LaunchConfig::new(8, 64))).unwrap();
        let b =
            dev.launch(1, KernelSpec::new("b", busy_probe(300), LaunchConfig::new(8, 64))).unwrap();
        dev.run_until_idle(50_000_000).unwrap();
        let (ra, rb) = (dev.results(a).unwrap(), dev.results(b).unwrap());
        // While running concurrently, SM sets are disjoint (blocks that ran
        // strictly after the other kernel finished may reuse SMs; overlap in
        // time is what matters).
        for blk_a in &ra.blocks {
            for blk_b in &rb.blocks {
                if blk_a.sm_id == blk_b.sm_id {
                    let disjoint_in_time = blk_a.end_cycle <= blk_b.start_cycle
                        || blk_b.end_cycle <= blk_a.start_cycle;
                    assert!(
                        disjoint_in_time,
                        "kernels shared SM {} concurrently under InterSmPartition",
                        blk_a.sm_id
                    );
                }
            }
        }
    }

    #[test]
    fn warped_slicer_coloctes_without_preemption() {
        let mut dev = Device::new(presets::tesla_k40c());
        dev.set_placement_policy(PlacementPolicy::WarpedSlicer);
        let a = dev
            .launch(0, KernelSpec::new("a", busy_probe(300), LaunchConfig::new(15, 128)))
            .unwrap();
        let b = dev
            .launch(1, KernelSpec::new("b", busy_probe(300), LaunchConfig::new(15, 128)))
            .unwrap();
        dev.run_until_idle(50_000_000).unwrap();
        // Both kernels cover all SMs (co-residency achieved).
        assert_eq!(dev.results(a).unwrap().sms_used().len(), 15);
        assert_eq!(dev.results(b).unwrap().sms_used().len(), 15);
    }

    #[test]
    fn smk_preempts_multi_block_kernels_to_admit_newcomers() {
        let mut dev = Device::new(presets::tesla_k40c());
        dev.set_placement_policy(PlacementPolicy::SmkPreemptive);
        // Hog: two full-size blocks per SM; nothing is left for B.
        let hog = dev
            .launch(
                0,
                KernelSpec::new(
                    "hog",
                    busy_probe(2_000),
                    LaunchConfig::new(30, 1024).with_registers_per_thread(8),
                ),
            )
            .unwrap();
        let newcomer = dev
            .launch(1, KernelSpec::new("new", busy_probe(10), LaunchConfig::new(1, 64)))
            .unwrap();
        dev.run_until_idle(200_000_000).unwrap();
        let hog_done = dev.results(hog).unwrap();
        let new_res = dev.results(newcomer).unwrap();
        // The newcomer ran *before* the hog finished: preemption made room.
        assert!(
            new_res.blocks[0].end_cycle < hog_done.completed_at,
            "newcomer waited for the hog: {} vs {}",
            new_res.blocks[0].end_cycle,
            hog_done.completed_at
        );
        // The hog still completes all 30 blocks (preempted ones restarted).
        assert_eq!(hog_done.blocks.len(), 30);
    }

    #[test]
    fn smk_never_preempts_single_block_kernels() {
        // The paper: "By using just one thread block for each spy and
        // trojan on each SM, the spy and trojan will be guaranteed not to
        // be preempted."
        let mut dev = Device::new(presets::tesla_k40c());
        dev.set_placement_policy(PlacementPolicy::SmkPreemptive);
        let protected = dev
            .launch(
                0,
                KernelSpec::new(
                    "spy",
                    busy_probe(2_000),
                    LaunchConfig::new(15, 2048).with_registers_per_thread(8),
                ),
            )
            .unwrap();
        // A newcomer that cannot fit and cannot preempt (every resident
        // kernel holds exactly one block per SM) must queue.
        let newcomer = dev
            .launch(1, KernelSpec::new("new", busy_probe(10), LaunchConfig::new(1, 64)))
            .unwrap();
        dev.run_until_idle(200_000_000).unwrap();
        let first_protected_end =
            dev.results(protected).unwrap().blocks.iter().map(|b| b.end_cycle).min().unwrap();
        let new_start = dev.results(newcomer).unwrap().blocks[0].start_cycle;
        assert!(new_start >= first_protected_end, "protected block was preempted");
    }

    #[test]
    fn leftover_and_slicer_results_agree_architecturally() {
        // The policy affects placement and timing, never correctness.
        let run = |policy: PlacementPolicy| -> Vec<u64> {
            let mut dev = Device::new(presets::tesla_k40c());
            dev.set_placement_policy(policy);
            let k = dev
                .launch(0, KernelSpec::new("k", busy_probe(50), LaunchConfig::new(6, 64)))
                .unwrap();
            dev.run_until_idle(50_000_000).unwrap();
            let mut out = dev.results(k).unwrap().flat_results();
            out.sort_unstable();
            out
        };
        // Block -> SM mapping differs, so compare multiset cardinality only.
        assert_eq!(run(PlacementPolicy::Leftover).len(), run(PlacementPolicy::WarpedSlicer).len());
    }
}

#[cfg(test)]
mod tuning_tests {
    use super::*;
    use crate::DeviceTuning;
    use gpgpu_isa::{ProgramBuilder, Reg, Special};
    use gpgpu_spec::{presets, FuOpKind, LaunchConfig};

    #[test]
    fn clock_fuzzing_quantizes_reads() {
        let tuning = DeviceTuning { clock_granularity: 256, ..DeviceTuning::none() };
        let mut dev = Device::with_tuning(presets::tesla_k40c(), tuning);
        let mut b = ProgramBuilder::new();
        for _ in 0..4 {
            b.fu(FuOpKind::SpSinf); // advance time between reads
            b.read_clock(Reg(0));
            b.push_result(Reg(0));
        }
        let k = dev
            .launch(0, KernelSpec::new("t", b.build().unwrap(), LaunchConfig::new(1, 32)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        for v in dev.results(k).unwrap().flat_results() {
            assert_eq!(v % 256, 0, "clock read {v} not quantized");
        }
    }

    #[test]
    fn randomized_scheduler_differs_from_round_robin_and_is_seeded() {
        let assignment = |seed: Option<u64>| -> Vec<u64> {
            let tuning = DeviceTuning { random_warp_scheduler: seed, ..DeviceTuning::none() };
            let mut dev = Device::with_tuning(presets::tesla_k40c(), tuning);
            let mut b = ProgramBuilder::new();
            b.read_special(Reg(0), Special::SchedulerId);
            b.push_result(Reg(0));
            let k = dev
                .launch(0, KernelSpec::new("t", b.build().unwrap(), LaunchConfig::new(1, 512)))
                .unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            dev.results(k).unwrap().flat_results()
        };
        let rr = assignment(None);
        assert_eq!(rr, (0..16).map(|w| w % 4).collect::<Vec<u64>>());
        let rand1 = assignment(Some(1));
        let rand1_again = assignment(Some(1));
        let rand2 = assignment(Some(2));
        assert_eq!(rand1, rand1_again, "seeded assignment must be deterministic");
        assert_ne!(rand1, rr, "randomized assignment should differ from round-robin");
        assert_ne!(rand1, rand2, "different seeds should differ");
        // Every scheduler id stays in range.
        assert!(rand1.iter().all(|&s| s < 4));
    }

    #[test]
    fn cache_partitioning_isolates_kernels_in_the_l1() {
        // Kernel 0 fills a set; kernel 1 (other partition) fills the same
        // geometric set; kernel 0's re-probe must still hit.
        let tuning = DeviceTuning { cache_partitions: 2, ..DeviceTuning::none() };
        let mut dev = Device::with_tuning(presets::tesla_k40c(), tuning);
        let fill_then_probe = |base: u64, wait: u64| {
            let (a, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
            let mut b = ProgramBuilder::new();
            for k in 0..4u64 {
                b.mov_imm(a, base + k * 512);
                b.const_load(a);
            }
            b.repeat(Reg(20), wait, |b| {
                b.fu(FuOpKind::SpAdd);
            });
            // timed probe of the first line
            b.mov_imm(a, base);
            b.read_clock(t0);
            b.const_load(a);
            b.read_clock(t1);
            b.sub(lat, t1, t0);
            b.push_result(lat);
            b.build().unwrap()
        };
        let victim = dev
            .launch(0, KernelSpec::new("victim", fill_then_probe(0, 800), LaunchConfig::new(1, 32)))
            .unwrap();
        // Attacker fills the same set from its own array while the victim waits.
        dev.launch(
            1,
            KernelSpec::new("attacker", fill_then_probe(2048, 1), LaunchConfig::new(15, 32)),
        )
        .unwrap();
        dev.run_until_idle(10_000_000).unwrap();
        let lat = dev.results(victim).unwrap().flat_results()[0];
        assert!(lat < 80, "partitioned victim must still hit its lines, got {lat}");
    }

    #[test]
    fn instruction_stats_count_exactly() {
        let mut dev = Device::new(presets::tesla_k40c());
        let mut b = ProgramBuilder::new();
        b.fu(FuOpKind::SpAdd); // 1 fu
        b.fu(FuOpKind::SpSinf); // 2 fu
        b.mov_imm(Reg(0), 64);
        b.const_load(Reg(0)); // 1 mem
        b.push_result(Reg(0));
        // + implicit halt: total 6 instructions per warp, 2 warps.
        let k = dev
            .launch(0, KernelSpec::new("t", b.build().unwrap(), LaunchConfig::new(1, 64)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let r = dev.results(k).unwrap();
        assert_eq!(r.instruction_mix(), (12, 4, 2));
    }
}
