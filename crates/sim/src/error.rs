//! Simulator error type.

use crate::kernel::KernelId;
use gpgpu_spec::SpecError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulator host API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A launch configuration failed validation against the device.
    Launch(SpecError),
    /// `run_until_idle` hit its cycle limit before the device drained —
    /// either the workload is larger than expected or two kernels
    /// deadlocked (e.g. a covert-channel handshake without timeouts).
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// Blocks remain queued but every resident warp has halted and no block
    /// can ever be placed (a block demands more than an idle SM's capacity
    /// combined with the current residency). Cannot normally happen because
    /// launches are validated, but guards the engine loop.
    SchedulerStuck,
    /// The queried kernel ID was never launched on this device.
    UnknownKernel(KernelId),
    /// The queried kernel has not completed yet.
    KernelNotComplete(KernelId),
    /// An instruction requires a unit class this device lacks (e.g. a
    /// double-precision op on the Maxwell Quadro M4000).
    UnsupportedInstruction {
        /// Description of the unsupported operation.
        what: String,
    },
    /// A topology operation addressed a device index the topology lacks.
    UnknownDevice {
        /// The out-of-range device index.
        index: usize,
        /// How many devices the topology has.
        devices: usize,
    },
    /// A topology operation addressed a link index the topology lacks.
    UnknownLink {
        /// The out-of-range link index.
        index: usize,
        /// How many links the topology has.
        links: usize,
    },
    /// A transfer was requested on a link the issuing device is not an
    /// endpoint of.
    NotALinkEndpoint {
        /// The link index.
        link: usize,
        /// The device that tried to use it.
        device: usize,
    },
    /// A link transfer queued longer than the topology's configured queue
    /// limit — the link is saturated (e.g. by a congestion fault storm) and
    /// forward progress at the requested rate is impossible.
    LinkSaturated {
        /// The saturated link.
        link: usize,
        /// The queue delay that exceeded the limit.
        queue_cycles: u64,
    },
    /// [`crate::Device::snapshot`] was called while kernels were still in
    /// flight. Snapshots capture only idle devices: with warps resident the
    /// state worth capturing lives in mid-flight structures whose
    /// copy-on-write restore would cost more than rerunning the warmup.
    SnapshotNotIdle {
        /// Number of incomplete kernels at the attempted capture.
        incomplete: usize,
    },
    /// [`crate::Device::restore`] was given a snapshot captured from a
    /// device with a different specification.
    SnapshotSpecMismatch,
    /// Two [`crate::DeviceTuning`]s set the same knob to different values,
    /// so merging them (stacking two mitigations) has no consistent
    /// semantics.
    TuningConflict {
        /// The contested tuning knob.
        field: &'static str,
        /// The left-hand side's value, as debug text.
        ours: String,
        /// The right-hand side's value, as debug text.
        theirs: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Launch(e) => write!(f, "launch rejected: {e}"),
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "device did not drain within {limit} cycles")
            }
            SimError::SchedulerStuck => {
                write!(f, "blocks remain queued but no progress is possible")
            }
            SimError::UnknownKernel(id) => write!(f, "unknown kernel id {id:?}"),
            SimError::KernelNotComplete(id) => write!(f, "kernel {id:?} has not completed"),
            SimError::UnsupportedInstruction { what } => {
                write!(f, "unsupported instruction: {what}")
            }
            SimError::UnknownDevice { index, devices } => {
                write!(f, "device index {index} out of range (topology has {devices})")
            }
            SimError::UnknownLink { index, links } => {
                write!(f, "link index {index} out of range (topology has {links})")
            }
            SimError::NotALinkEndpoint { link, device } => {
                write!(f, "device {device} is not an endpoint of link {link}")
            }
            SimError::LinkSaturated { link, queue_cycles } => {
                write!(f, "link {link} saturated: transfer queued {queue_cycles} cycles")
            }
            SimError::SnapshotNotIdle { incomplete } => {
                write!(f, "cannot snapshot a busy device ({incomplete} kernels in flight)")
            }
            SimError::SnapshotSpecMismatch => {
                write!(f, "snapshot was captured from a device with a different spec")
            }
            SimError::TuningConflict { field, ours, theirs } => {
                write!(f, "tuning conflict on `{field}`: {ours} vs {theirs}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Launch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for SimError {
    fn from(e: SpecError) -> Self {
        SimError::Launch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Launch(SpecError::ZeroLaunchField { field: "threads" });
        assert!(e.to_string().contains("launch rejected"));
        assert!(e.source().is_some());
        assert!(SimError::SchedulerStuck.source().is_none());
    }
}
