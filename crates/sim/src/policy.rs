//! Block-placement policies.
//!
//! The paper's Section 3.2 analyzes how its co-location techniques carry
//! over to multiprogramming schedulers proposed in the literature. The
//! simulator implements all four families so those claims are testable:
//!
//! * [`PlacementPolicy::Leftover`] — current GPUs (the default): blocks are
//!   placed round-robin wherever leftover capacity allows; strictly
//!   non-preemptive; blocks queue when nothing fits.
//! * [`PlacementPolicy::SmkPreemptive`] — Wang et al.'s *Simultaneous
//!   Multikernel*: a newly arrived kernel may preempt resident blocks of
//!   kernels holding more than one block on the victim SM ("those thread
//!   blocks of previously scheduled kernels that have the highest resource
//!   usage on the victim SM may be preempted"). A kernel with a single
//!   block per SM is never preempted — the guarantee the paper's spy and
//!   trojan exploit.
//! * [`PlacementPolicy::WarpedSlicer`] — Xu et al.'s intra-SM partitioning:
//!   non-preemptive like leftover, but placement is best-fit (the SM with
//!   the most free capacity) instead of round-robin, co-scheduling kernels
//!   whose resource profiles are compatible.
//! * [`PlacementPolicy::InterSmPartition`] — Adriaens et al. / Tanasic et
//!   al.: multiprogramming at whole-SM granularity; an SM hosts blocks of
//!   at most one kernel at a time, so intra-SM channels are impossible and
//!   only the inter-SM (L2, atomic) channels remain.
/// A block-placement policy (see the module docs for the literature each
/// variant models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Non-preemptive leftover policy (current GPUs).
    #[default]
    Leftover,
    /// Wang et al. simultaneous multikernel with block-granularity
    /// preemption.
    SmkPreemptive,
    /// Xu et al. Warped-Slicer: non-preemptive best-fit intra-SM sharing.
    WarpedSlicer,
    /// Whole-SM spatial partitioning (Adriaens et al., Tanasic et al.).
    InterSmPartition,
}

impl PlacementPolicy {
    /// All policies, for sweep experiments.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::Leftover,
        PlacementPolicy::SmkPreemptive,
        PlacementPolicy::WarpedSlicer,
        PlacementPolicy::InterSmPartition,
    ];

    /// Whether the policy ever evicts a resident block.
    pub fn is_preemptive(self) -> bool {
        matches!(self, PlacementPolicy::SmkPreemptive)
    }

    /// Whether two kernels can ever share an SM under this policy.
    pub fn allows_intra_sm_sharing(self) -> bool {
        !matches!(self, PlacementPolicy::InterSmPartition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_leftover() {
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::Leftover);
    }

    #[test]
    fn property_flags() {
        assert!(PlacementPolicy::SmkPreemptive.is_preemptive());
        assert!(!PlacementPolicy::WarpedSlicer.is_preemptive());
        assert!(!PlacementPolicy::InterSmPartition.allows_intra_sm_sharing());
        assert!(PlacementPolicy::Leftover.allows_intra_sm_sharing());
    }
}
