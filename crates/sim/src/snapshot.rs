//! Copy-on-write device snapshots.
//!
//! A [`DeviceSnapshot`] captures the full observable state of an *idle*
//! [`Device`] — caches, port horizons, allocator cursors, kernel history,
//! RNG — behind an `Arc`. Cloning a snapshot is a refcount bump; restoring
//! one copies the captured state back into an existing device *in place*,
//! reusing the device's allocations. Sweeps that repeat many trials from
//! one calibrated/warmed-up state capture once per sweep cell and restore
//! per trial, instead of re-running the warmup (or rebuilding the device)
//! every time.

use crate::device::StreamQueue;
use crate::error::SimError;
use crate::kernel::KernelState;
use crate::sm::SmTimingState;
use crate::stats::SimStats;
use crate::{Device, StreamId};
use gpgpu_mem::{AtomicSystem, ConstHierarchy, GlobalMemory};
use gpgpu_spec::DeviceSpec;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// The captured state. One allocation per snapshot, shared by every clone.
#[derive(Debug)]
pub(crate) struct SnapshotInner {
    pub spec: DeviceSpec,
    pub now: u64,
    pub sm_timing: Vec<SmTimingState>,
    pub const_mem: ConstHierarchy,
    pub atomics: AtomicSystem,
    pub gmem: GlobalMemory,
    pub kernels: Vec<KernelState>,
    pub policy: crate::PlacementPolicy,
    pub rr_cursor: usize,
    pub next_global: u64,
    pub next_const: u64,
    pub jitter_max: u64,
    pub rng: StdRng,
    pub stats: SimStats,
    pub incomplete: usize,
    pub pending_arrivals: BinaryHeap<Reverse<u64>>,
    pub streams: HashMap<StreamId, StreamQueue>,
}

/// A cheaply clonable snapshot of an idle [`Device`] (see the module docs).
///
/// # Example
///
/// ```
/// use gpgpu_sim::{Device, KernelSpec};
/// use gpgpu_spec::{presets, LaunchConfig};
///
/// let mut dev = Device::new(presets::tesla_k40c());
/// let mut b = gpgpu_isa::ProgramBuilder::new();
/// b.mov_imm(gpgpu_isa::Reg(0), 0);
/// b.const_load(gpgpu_isa::Reg(0)); // warm the constant cache
/// let warm = KernelSpec::new("warm", b.build().unwrap(), LaunchConfig::new(1, 32));
/// dev.launch(0, warm.clone()).unwrap();
/// dev.run_until_idle(1_000_000).unwrap();
///
/// let snap = dev.snapshot().unwrap(); // capture the warmed-up state
/// let at_capture = dev.now();
/// dev.launch(0, warm).unwrap(); // diverge...
/// dev.run_until_idle(1_000_000).unwrap();
/// dev.restore(&snap).unwrap(); // ...and rewind
/// assert_eq!(dev.now(), at_capture);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceSnapshot {
    pub(crate) inner: Arc<SnapshotInner>,
}

impl DeviceSnapshot {
    /// The simulated cycle at which the snapshot was captured.
    pub fn now(&self) -> u64 {
        self.inner.now
    }

    /// The specification of the device the snapshot was captured from.
    pub fn spec(&self) -> &DeviceSpec {
        &self.inner.spec
    }
}

impl Device {
    /// Captures a snapshot of this (idle) device. The trace sink and fault
    /// injector are *not* captured — install them after a restore, as after
    /// construction.
    ///
    /// # Errors
    ///
    /// * [`SimError::SnapshotNotIdle`] if any launched kernel has not
    ///   completed.
    pub fn snapshot(&self) -> Result<DeviceSnapshot, SimError> {
        if !self.is_idle() {
            return Err(SimError::SnapshotNotIdle { incomplete: self.incomplete });
        }
        Ok(DeviceSnapshot {
            inner: Arc::new(SnapshotInner {
                spec: self.spec.clone(),
                now: self.now,
                sm_timing: self.sms.iter().map(|sm| sm.capture_timing()).collect(),
                const_mem: self.const_mem.clone(),
                atomics: self.atomics.clone(),
                gmem: self.gmem.clone(),
                kernels: self.kernels.clone(),
                policy: self.policy,
                rr_cursor: self.rr_cursor,
                next_global: self.next_global,
                next_const: self.next_const,
                jitter_max: self.jitter_max,
                rng: self.rng.clone(),
                stats: self.stats,
                incomplete: self.incomplete,
                pending_arrivals: self.pending_arrivals.clone(),
                streams: self.streams.clone(),
            }),
        })
    }

    /// Restores this device to the captured state, in place: cache arrays,
    /// port horizons and cursors are copied into the existing allocations
    /// (the kernel table is the one clone). Any in-flight state is
    /// discarded; the trace sink and fault injector are removed, mirroring
    /// [`Device::snapshot`] not capturing them. Engine mode and mitigation
    /// tuning are construction-time properties and remain the device's own.
    ///
    /// # Errors
    ///
    /// * [`SimError::SnapshotSpecMismatch`] if the snapshot was captured
    ///   from a device with a different specification (the restore is not
    ///   attempted).
    pub fn restore(&mut self, snapshot: &DeviceSnapshot) -> Result<(), SimError> {
        let snap = &*snapshot.inner;
        if self.spec != snap.spec {
            return Err(SimError::SnapshotSpecMismatch);
        }
        self.now = snap.now;
        for (sm, timing) in self.sms.iter_mut().zip(&snap.sm_timing) {
            sm.restore_timing(timing);
        }
        self.const_mem.copy_state_from(&snap.const_mem);
        self.atomics.copy_state_from(&snap.atomics);
        self.gmem.copy_state_from(&snap.gmem);
        // Recycle the current kernel table's buffers before replacing it.
        let mut kernels = std::mem::take(&mut self.kernels);
        for k in kernels.drain(..) {
            let KernelState { records, mut retry_blocks, .. } = k;
            retry_blocks.clear();
            self.recycle_kernel_buffers(records, retry_blocks);
        }
        kernels.extend(snap.kernels.iter().cloned());
        self.kernels = kernels;
        self.policy = snap.policy;
        self.rr_cursor = snap.rr_cursor;
        self.next_global = snap.next_global;
        self.next_const = snap.next_const;
        self.jitter_max = snap.jitter_max;
        self.rng = snap.rng.clone();
        self.stats = snap.stats;
        self.placement_dirty = true;
        self.incomplete = snap.incomplete;
        // The kernel table was just drained (snapshots are idle-only), so
        // no kernel has unplaced blocks.
        self.unplaced_kernels = 0;
        self.pending_arrivals.clear();
        self.pending_arrivals.extend(snap.pending_arrivals.iter().cloned());
        self.streams.clear();
        self.streams.extend(snap.streams.iter().map(|(k, v)| (*k, v.clone())));
        self.finished_buf.clear();
        self.trace = None;
        self.faults = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Device, KernelSpec, SimError};
    use gpgpu_isa::{ProgramBuilder, Reg};
    use gpgpu_spec::{presets, LaunchConfig};

    fn timed_probe(addr: u64) -> gpgpu_isa::Program {
        let (a, t0, t1, lat) = (Reg(0), Reg(1), Reg(2), Reg(3));
        let mut b = ProgramBuilder::new();
        b.mov_imm(a, addr);
        b.read_clock(t0);
        b.const_load(a);
        b.read_clock(t1);
        b.sub(lat, t1, t0);
        b.push_result(lat);
        b.build().unwrap()
    }

    #[test]
    fn busy_devices_refuse_to_snapshot() {
        let mut dev = Device::new(presets::tesla_k40c());
        assert!(dev.snapshot().is_ok(), "a fresh device is idle");
        dev.launch(0, KernelSpec::new("k", timed_probe(0), LaunchConfig::new(1, 32))).unwrap();
        assert!(matches!(dev.snapshot(), Err(SimError::SnapshotNotIdle { incomplete: 1 })));
    }

    #[test]
    fn restore_rejects_a_foreign_snapshot() {
        let kepler = Device::new(presets::tesla_k40c());
        let mut maxwell = Device::new(presets::quadro_m4000());
        let snap = kepler.snapshot().unwrap();
        assert_eq!(maxwell.restore(&snap), Err(SimError::SnapshotSpecMismatch));
    }

    #[test]
    fn restore_rewinds_cache_state_and_clock_exactly() {
        // Warm the cache, snapshot, probe, then restore and probe again —
        // every replay must match a control device that ran warm-then-probe
        // straight through, with no snapshot machinery in between.
        let launch = LaunchConfig::new(1, 32);
        let control = {
            let mut dev = Device::new(presets::tesla_k40c());
            let addr = dev.alloc_constant(64);
            dev.launch(0, KernelSpec::new("warm", timed_probe(addr), launch)).unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            let warm_done = dev.now();
            let k = dev.launch(0, KernelSpec::new("probe", timed_probe(addr), launch)).unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            (warm_done, dev.now(), dev.results(k).unwrap().flat_results())
        };

        let mut dev = Device::new(presets::tesla_k40c());
        let addr = dev.alloc_constant(64);
        dev.launch(0, KernelSpec::new("warm", timed_probe(addr), launch)).unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let snap = dev.snapshot().unwrap();
        assert_eq!(snap.now(), control.0);

        let replay = |dev: &mut Device| -> (u64, u64, Vec<u64>) {
            dev.restore(&snap).unwrap();
            let at_restore = dev.now();
            let k = dev.launch(0, KernelSpec::new("probe", timed_probe(addr), launch)).unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            (at_restore, dev.now(), dev.results(k).unwrap().flat_results())
        };
        // First replay happens right after capture; the second replays over
        // the diverged state the first one left behind.
        let first = replay(&mut dev);
        assert_eq!(first, control, "snapshot replay diverged from the straight-through run");
        let second = replay(&mut dev);
        assert_eq!(second, control, "second restore diverged");

        // And the warmed hierarchy is observably warm: a cold device's
        // probe (same allocation, no warm kernel) pays the memory fill.
        let cold = {
            let mut dev = Device::new(presets::tesla_k40c());
            let addr = dev.alloc_constant(64);
            let k = dev.launch(0, KernelSpec::new("probe", timed_probe(addr), launch)).unwrap();
            dev.run_until_idle(1_000_000).unwrap();
            dev.results(k).unwrap().flat_results()
        };
        assert!(
            first.2[0] < cold[0],
            "restored probe ({:?}) should beat a cold probe ({:?})",
            first.2,
            cold
        );
    }

    #[test]
    fn snapshots_are_cheap_to_clone_and_outlive_the_device() {
        let mut dev = Device::new(presets::tesla_k40c());
        dev.launch(0, KernelSpec::new("k", timed_probe(0), LaunchConfig::new(1, 32))).unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let snap = dev.snapshot().unwrap();
        let clone = snap.clone();
        drop(dev);
        assert_eq!(clone.now(), snap.now());
        assert_eq!(clone.spec().name, "Tesla K40C");
        // A fresh device of the same spec accepts the orphaned snapshot.
        let mut fresh = Device::new(presets::tesla_k40c());
        fresh.restore(&clone).unwrap();
        assert_eq!(fresh.now(), snap.now());
        assert_eq!(fresh.kernel_name(crate::KernelId(0)).unwrap(), "k");
    }
}
