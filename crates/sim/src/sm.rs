//! The streaming-multiprocessor model: resident warps, a [`SubCore`] issue
//! partition per warp scheduler (each owning its functional-unit ports and
//! round-robin cursor), and per-SM resource accounting. Legacy generations
//! use the shared-issue degenerate decomposition; Ampere's sub-cores are
//! single-issue with fixed-latency dependence management (see
//! [`gpgpu_spec::SubCoreSpec`] and `DESIGN.md` §10).
//!
//! Warp state lives in a struct-of-arrays [`WarpTable`] and the issue scan
//! walks per-scheduler membership bitsets instead of every warp context —
//! see `DESIGN.md` ("Data-oriented core") for the layout and the argument
//! that the scan order is identical to the legacy array-of-structs engine.

use crate::fault::FaultInjector;
use crate::kernel::{BlockRecord, KernelId};
use crate::trace::{TraceEvent, TraceSink};
use crate::warp::{WarpTable, MAX_SCHEDULERS, UNTIL_AT_BARRIER, UNTIL_HALTED};
use gpgpu_isa::{Instr, LanePattern, Operand, Special};
use gpgpu_mem::{AtomicSystem, ConstHierarchy, GlobalMemory, PortSet};
use gpgpu_spec::{
    Architecture, BlockResources, DependenceMode, FuOpKind, FuTiming, FuUnit, SmSpec, SubCoreSpec,
};
use std::sync::Arc;

/// Mutable references to the device-wide memory subsystems, threaded through
/// the per-SM step so a single `&mut Device` borrow can be split.
#[derive(Debug)]
pub(crate) struct Subsystems<'a> {
    pub const_mem: &'a mut ConstHierarchy,
    pub atomics: &'a mut AtomicSystem,
    pub gmem: &'a mut GlobalMemory,
    /// Trace sink, when installed on the device; a single `Option` check
    /// per emission site when disabled. (`+ 'static` keeps the *object*
    /// bound off the borrow lifetime `'a` — `&mut` is invariant, so the
    /// default `dyn TraceSink + 'a` would force `'a = 'static` at the
    /// construction site in `Device::step_cycle`.)
    pub trace: Option<&'a mut (dyn TraceSink + 'static)>,
    /// Fault injector, when installed on the device; a single `Option`
    /// check per hook site when disabled. A distinct field from `const_mem`
    /// so hook calls can borrow both at once.
    pub faults: Option<&'a mut FaultInjector>,
}

/// A thread block currently resident on this SM.
#[derive(Debug)]
pub(crate) struct ResidentBlock {
    pub kernel: KernelId,
    pub block_id: u32,
    pub warps_total: u32,
    pub warps_halted: u32,
    /// Warps currently parked at a `bar.sync`.
    pub at_barrier: u32,
    pub start_cycle: u64,
    /// Resources to release at completion.
    pub res: BlockResources,
}

/// Snapshot of one SM's timing state (per-sub-core issue-port horizons and
/// round-robin cursors) — everything an *idle* SM carries besides its static
/// spec. Used by [`crate::DeviceSnapshot`].
#[derive(Debug, Clone)]
pub(crate) struct SmTimingState {
    sub_cores: Vec<SubCore>,
    shared_port: PortSet,
}

/// One sub-core (issue partition) of an SM: one warp scheduler plus its
/// private share of every functional-unit class and its round-robin issue
/// cursor. On Fermi/Kepler/Maxwell this is the *shared-issue* degenerate
/// decomposition — one sub-core per legacy warp scheduler with the legacy
/// dispatch width — so the clocked state is regrouped, not changed, and the
/// three legacy architectures stay bit-identical. On Ampere the sub-cores
/// are architectural: single-issue, private register-file slice, and (per
/// the device's [`SubCoreSpec`]) fixed-latency dependence management.
#[derive(Debug, Clone)]
pub(crate) struct SubCore {
    /// `ports[unit_index(unit)]`: issue ports for this sub-core's share of
    /// each unit class. Contention through these ports is isolated per
    /// sub-core — the paper's central Section 5 observation, sharpened on
    /// Ampere where the partition is physical.
    ports: [PortSet; 4],
    /// Round-robin cursor into the warp table for this sub-core's scheduler.
    cursor: usize,
}

/// Shared-memory banking constants (uniform across the modelled
/// generations): 32 four-byte-word-interleaved banks, ~26-cycle base
/// latency, 2 extra cycles per additional conflicting word.
const SHARED_BANKS: u32 = 32;
const SHARED_WORD_BYTES: u64 = 4;
const SHARED_BASE_LATENCY: u64 = 26;
const SHARED_CONFLICT_PENALTY: u64 = 2;

/// Whether an instruction writes only warp-private state (registers, PC,
/// the warp's own result buffer), always retires in one cycle, and reads
/// nothing beyond that state and the exact cycle number — the set eligible
/// to *extend* a batched run (see [`Sm::execute`]).
///
/// `ReadClock` qualifies because the batch loop executes every instruction
/// at its exact architectural cycle: the sampled (quantized) clock and the
/// clock-perturbation fault offset — a keyed hash of `(seed, now, sm)` —
/// come out identical to one-instruction-per-visit issue.
///
/// Everything else is excluded because its effect depends on what *other
/// agents* did by the time it executes: FU and LD/ST port acquisition,
/// cache and atomic state, `BarSync` (block-shared barrier counts) and
/// `Halt` (block completion timing). Those still execute inside a batch —
/// but only as its *first* instruction, where cross-agent interleaving is
/// preserved by construction.
fn is_warp_private(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::MovImm { .. }
            | Instr::Mov { .. }
            | Instr::Add { .. }
            | Instr::Sub { .. }
            | Instr::AddImm { .. }
            | Instr::MulImm { .. }
            | Instr::AndImm { .. }
            | Instr::ReadClock { .. }
            | Instr::ReadSpecial { .. }
            | Instr::PushResult { .. }
            | Instr::Branch { .. }
            | Instr::Jump { .. }
    )
}

fn unit_index(unit: FuUnit) -> usize {
    match unit {
        FuUnit::Sp => 0,
        FuUnit::Dpu => 1,
        FuUnit::Sfu => 2,
        FuUnit::LdSt => 3,
    }
}

/// Fills `buf` with the 32 lane addresses of a warp-level memory access and
/// returns the count — the stack-buffer replacement for the old
/// `Vec<u64>`-per-instruction path.
#[inline]
fn fill_lanes(buf: &mut [u64; 32], pattern: LanePattern, base: u64) -> usize {
    let mut n = 0;
    for a in pattern.lane_addrs(base) {
        buf[n] = a;
        n += 1;
    }
    n
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub(crate) struct Sm {
    pub id: u32,
    spec: SmSpec,
    arch: Architecture,
    /// Issue-partition decomposition: sub-core count/width and the
    /// dependence-management flag ([`DependenceMode`]). Validated against
    /// `spec` at construction so the two descriptions cannot drift.
    sub_core_spec: SubCoreSpec,
    pub warps: WarpTable,
    /// One [`SubCore`] per warp scheduler (legacy: the shared-issue
    /// degenerate case; Ampere: architectural issue partitions).
    sub_cores: Vec<SubCore>,
    pub used_threads: u32,
    pub used_blocks: u32,
    pub used_shared: u64,
    pub used_regs: u64,
    pub resident: Vec<ResidentBlock>,
    /// Per-kernel program table, indexed by kernel id: one `Arc` clone per
    /// (kernel, SM) pair instead of one per warp.
    programs: Vec<Option<Arc<gpgpu_isa::Program>>>,
    /// Per-SM shared-memory access port (bank conflicts serialize on it).
    shared_port: PortSet,
    /// `clock()` quantization (1 = exact) — Section-9 time fuzzing.
    clock_quantum: u64,
    /// Keyed-hash warp->scheduler assignment seed — Section-9 scheduler
    /// randomization. `None` = round-robin (real hardware).
    sched_seed: Option<u64>,
    /// Cached earliest wake time over resident warps (`u64::MAX` when no
    /// warp is live). Lets the device skip this SM entirely on cycles where
    /// nothing can issue or wake, without rescanning the warp contexts.
    /// Maintained at block placement/preemption and at the end of each step.
    next_wake_cache: u64,
    /// Per-scheduler earliest wake times (same maintenance points as
    /// `next_wake_cache`): in event-driven mode a scheduler with no wake at
    /// the current cycle skips its warp scan entirely.
    sched_wake: [u64; MAX_SCHEDULERS],
    /// Set when a warp executed `Halt` since the last finished-block
    /// collection; blocks can only complete at a halt, so collection is
    /// skipped while this is clear.
    pending_halt: bool,
}

impl Sm {
    #[cfg(test)]
    pub fn new(id: u32, spec: SmSpec, arch: Architecture) -> Self {
        let sub_core = SubCoreSpec::shared_issue(&spec);
        Self::new_tuned(id, spec, arch, sub_core, 1, None)
    }

    pub fn new_tuned(
        id: u32,
        spec: SmSpec,
        arch: Architecture,
        sub_core_spec: SubCoreSpec,
        clock_quantum: u64,
        sched_seed: Option<u64>,
    ) -> Self {
        let nsched = spec.num_warp_schedulers as usize;
        assert!(nsched <= MAX_SCHEDULERS, "unsupported scheduler count {nsched}");
        sub_core_spec
            .validate_against(&spec)
            .expect("device sub-core spec is consistent with its SM spec");
        let ports_for = |unit: FuUnit| -> PortSet {
            PortSet::new(spec.pools.scheduler_ports(unit, spec.num_warp_schedulers))
        };
        let sub_cores = (0..nsched)
            .map(|_| SubCore {
                ports: [
                    ports_for(FuUnit::Sp),
                    ports_for(FuUnit::Dpu),
                    ports_for(FuUnit::Sfu),
                    ports_for(FuUnit::LdSt),
                ],
                cursor: 0,
            })
            .collect();
        Sm {
            id,
            spec,
            arch,
            sub_core_spec,
            warps: WarpTable::new(),
            sub_cores,
            used_threads: 0,
            used_blocks: 0,
            used_shared: 0,
            used_regs: 0,
            resident: Vec::new(),
            programs: Vec::new(),
            shared_port: PortSet::new(1),
            clock_quantum: clock_quantum.max(1),
            sched_seed,
            next_wake_cache: u64::MAX,
            sched_wake: [u64::MAX; MAX_SCHEDULERS],
            pending_halt: false,
        }
    }

    /// Whether a block with resources `res` fits in the current leftover
    /// capacity (leftover policy, paper Section 3.1).
    pub fn block_fits(&self, res: &BlockResources) -> bool {
        self.used_blocks < self.spec.max_blocks
            && self.used_threads + res.threads <= self.spec.max_threads
            && self.used_shared + res.shared_mem_bytes <= self.spec.shared_mem_bytes
            && self.used_regs + res.total_registers() <= u64::from(self.spec.registers)
    }

    /// Places one block: charges resources and creates its warps, assigning
    /// them to warp schedulers round-robin by warp index.
    pub fn place_block(
        &mut self,
        kernel: KernelId,
        block_id: u32,
        grid_blocks: u32,
        res: BlockResources,
        program: &Arc<gpgpu_isa::Program>,
        now: u64,
    ) {
        debug_assert!(self.block_fits(&res));
        self.used_blocks += 1;
        self.used_threads += res.threads;
        self.used_shared += res.shared_mem_bytes;
        self.used_regs += res.total_registers();
        let warps = res.warps();
        self.resident.push(ResidentBlock {
            kernel,
            block_id,
            warps_total: warps,
            warps_halted: 0,
            at_barrier: 0,
            start_cycle: now,
            res,
        });
        // Register the kernel's program once per (kernel, SM) — warps refer
        // to it by kernel id instead of each holding an `Arc` clone.
        let kslot = kernel.0 as usize;
        if self.programs.len() <= kslot {
            self.programs.resize(kslot + 1, None);
        }
        if self.programs[kslot].is_none() {
            self.programs[kslot] = Some(Arc::clone(program));
        }
        for w in 0..warps {
            let scheduler = match self.sched_seed {
                // Round-robin, as reverse engineered on real GPUs (§3.1).
                None => w % self.spec.num_warp_schedulers,
                // Randomized assignment (§9 mitigation): keyed hash over
                // (seed, kernel, block, warp).
                Some(seed) => {
                    let key = seed
                        ^ (u64::from(kernel.0) << 40)
                        ^ (u64::from(block_id) << 20)
                        ^ u64::from(w);
                    (crate::tuning::splitmix64(key) % u64::from(self.spec.num_warp_schedulers))
                        as u32
                }
            };
            self.warps.push(kernel, block_id, w, scheduler, grid_blocks);
        }
        // New warps are Ready (wake time 0): refresh both the global and
        // the per-scheduler wake caches.
        self.recompute_next_wake();
    }

    /// Whether any warp could issue or wake at cycle `now` — O(1) via the
    /// cached next-wake time. When false, stepping the SM is provably a
    /// no-op (no issue, no block completion) and the device skips it.
    pub fn has_work_at(&self, now: u64) -> bool {
        self.next_wake_cache != u64::MAX && self.next_wake_cache <= now
    }

    /// Runs one cycle: each scheduler issues up to its dispatch width of
    /// ready warps. Finished blocks are appended to `finished` (reusing
    /// pooled records from `record_arena` when available); returns whether
    /// any warp issued.
    ///
    /// With `event_driven` set, a scheduler whose cached earliest wake time
    /// lies in the future skips its warp scan. This is exact: the scan could
    /// not issue anything (no warp of that scheduler is ready), and a
    /// fruitless scan mutates no state — not even the round-robin cursor.
    /// Executing a warp can never make another warp ready *this* cycle
    /// (barrier releases block until `now + 1`), so caches refreshed at the
    /// previous recompute cannot hide a ready warp.
    ///
    /// The scan itself iterates the scheduler's membership bitset rotated at
    /// its round-robin cursor — bit order restricted to the scheduler's
    /// members is exactly the legacy `(cursor + k) % n` full-table walk, so
    /// issue order (and with it every downstream timing decision) is
    /// bit-identical to the array-of-structs engine.
    ///
    /// `batch_until` bounds pure-ALU batch execution (see
    /// [`Sm::batch_budget`]): when it exceeds `now + 1` a warp that is the
    /// only schedulable work on its scheduler may retire a run of
    /// warp-private instructions in this one visit, each at its exact
    /// architectural cycle. Passing `now + 1` disables batching; the device
    /// passes that in dense mode (the reference engine stays strictly one
    /// instruction per visit) and whenever any cross-warp event could land
    /// inside the span.
    pub fn step(
        &mut self,
        now: u64,
        subs: &mut Subsystems<'_>,
        finished: &mut Vec<(KernelId, BlockRecord)>,
        record_arena: &mut Vec<BlockRecord>,
        event_driven: bool,
        batch_until: u64,
    ) -> bool {
        let nsched = self.spec.num_warp_schedulers as usize;
        // Per-sub-core issue width: the legacy dispatch width for the
        // shared-issue decomposition, 1 on single-issue Ampere sub-cores.
        let dispatch = self.sub_core_spec.issue_slots as usize;
        let n = self.warps.len();
        let mut issued_any = false;
        if n > 0 {
            for sched in 0..nsched {
                if event_driven && self.sched_wake[sched] > now {
                    continue;
                }
                let mask = self.warps.mask(sched);
                if mask == 0 {
                    continue;
                }
                let start = self.sub_cores[sched].cursor % n;
                let mut issued = 0;
                // High half first (slots >= start, ascending), then the
                // wrapped low half (slots < start, ascending).
                let mut part = mask & (u128::MAX << start);
                let mut wrapped = start == 0;
                'scan: loop {
                    while part != 0 {
                        let idx = part.trailing_zeros() as usize;
                        part &= part - 1;
                        if self.warps.is_ready(idx, now) {
                            let budget = if batch_until > now + 1 {
                                self.batch_budget(idx, mask, now, batch_until)
                            } else {
                                1
                            };
                            self.execute(idx, now, subs, budget);
                            issued_any = true;
                            issued += 1;
                            if issued >= dispatch {
                                self.sub_cores[sched].cursor = (idx + 1) % n;
                                break 'scan;
                            }
                        }
                    }
                    if wrapped {
                        break;
                    }
                    wrapped = true;
                    part = mask & !(u128::MAX << start);
                }
            }
        }
        // Blocks only complete when a warp halts, so the residency scan is
        // needed (in either engine mode) only after a `Halt` executed.
        if self.pending_halt {
            self.collect_finished_blocks(now, finished, record_arena);
            self.pending_halt = false;
        }
        self.recompute_next_wake();
        issued_any
    }

    /// How many consecutive instructions warp `idx` may retire in one visit
    /// without any other agent observing or perturbing the run.
    ///
    /// The bound is the earliest cycle at which *any other warp of the same
    /// scheduler* could issue: until then, the scheduler would re-elect
    /// `idx` every cycle anyway (warps on other schedulers issue
    /// independently, and a batch only ever extends through warp-private
    /// instructions — see [`is_warp_private`] — so no port, cache or
    /// barrier interaction is possible inside the span). A sibling parked
    /// at a barrier caps the budget at one instruction: a warp on another
    /// scheduler could release it anywhere inside the span.
    ///
    /// `batch_until` is the device-level bound (the run budget): no batched
    /// instruction may execute at a cycle `>= batch_until`, which keeps
    /// `CycleLimitExceeded` firing at exactly the dense engine's cycle.
    fn batch_budget(&self, idx: usize, mask: u128, now: u64, batch_until: u64) -> u64 {
        let mut bound = batch_until;
        let mut others = mask & !(1u128 << idx);
        while others != 0 {
            let o = others.trailing_zeros() as usize;
            others &= others - 1;
            let u = self.warps.until[o];
            if u == UNTIL_AT_BARRIER {
                return 1;
            }
            // Halted warps (`UNTIL_HALTED`) never wake; the min leaves them
            // behind naturally.
            bound = bound.min(u);
        }
        // A sibling already ready (or waking next cycle) forces the normal
        // one-instruction issue; otherwise instructions may occupy cycles
        // `now .. bound`.
        bound.saturating_sub(now).max(1)
    }

    /// Whether the SM hosts blocks of any kernel other than `kernel`.
    pub fn hosts_other_kernel(&self, kernel: KernelId) -> bool {
        self.resident.iter().any(|r| r.kernel != kernel)
    }

    /// Number of resident blocks belonging to `kernel`.
    pub fn blocks_of(&self, kernel: KernelId) -> u32 {
        self.resident.iter().filter(|r| r.kernel == kernel).count() as u32
    }

    /// A free-capacity score in [0, 2]: the fraction of free threads plus
    /// the fraction of free shared memory (Warped-Slicer best-fit metric).
    pub fn free_capacity_score(&self) -> f64 {
        let threads = 1.0 - f64::from(self.used_threads) / f64::from(self.spec.max_threads);
        let smem = 1.0 - self.used_shared as f64 / self.spec.shared_mem_bytes as f64;
        threads + smem
    }

    /// SMK preemption victim selection: among resident blocks whose kernel
    /// holds *more than one* block on this SM (single-block kernels are
    /// protected — the guarantee the paper's attack relies on) and is not
    /// `requester`, the block with the highest resource usage.
    pub fn preemption_victim(&self, requester: KernelId) -> Option<(KernelId, u32)> {
        self.resident
            .iter()
            .filter(|r| r.kernel != requester && self.blocks_of(r.kernel) > 1)
            .max_by_key(|r| (r.res.shared_mem_bytes, r.res.threads, r.res.total_registers()))
            .map(|r| (r.kernel, r.block_id))
    }

    /// Evicts a resident block (block-granularity preemption, Wang et al.):
    /// frees its resources and discards its warps. The caller re-queues the
    /// block; on re-placement it restarts from scratch — an approximation
    /// of SMK's context save/restore that is exact for the idempotent probe
    /// kernels used throughout this workspace.
    pub fn preempt_block(&mut self, kernel: KernelId, block_id: u32) {
        let pos = self
            .resident
            .iter()
            .position(|r| r.kernel == kernel && r.block_id == block_id)
            .expect("preemption victim is resident");
        let rb = self.resident.swap_remove(pos);
        self.used_blocks -= 1;
        self.used_threads -= rb.res.threads;
        self.used_shared -= rb.res.shared_mem_bytes;
        self.used_regs -= rb.res.total_registers();
        let (lo, hi) = self.warp_range(kernel, block_id, rb.warps_total);
        self.warps.remove_range(lo, hi);
        for sc in &mut self.sub_cores {
            sc.cursor = 0;
        }
        self.recompute_next_wake();
    }

    /// Earliest wake time among resident warps, if any warp is still live.
    /// O(1) from the cached next-wake time.
    pub fn next_wake(&self, now: u64) -> Option<u64> {
        if self.next_wake_cache == u64::MAX {
            None
        } else {
            Some(self.next_wake_cache.max(now))
        }
    }

    /// Drops every warp, block and cached program and zeroes the resource
    /// and timing accounting, retaining all capacity — the per-trial reset.
    pub fn reset_for_trial(&mut self) {
        self.warps.clear();
        self.resident.clear();
        self.used_threads = 0;
        self.used_blocks = 0;
        self.used_shared = 0;
        self.used_regs = 0;
        for sc in &mut self.sub_cores {
            for p in sc.ports.iter_mut() {
                p.reset();
            }
            sc.cursor = 0;
        }
        self.shared_port.reset();
        for p in &mut self.programs {
            *p = None;
        }
        self.next_wake_cache = u64::MAX;
        self.sched_wake = [u64::MAX; MAX_SCHEDULERS];
        self.pending_halt = false;
    }

    /// Clones the SM's timing state for a [`crate::DeviceSnapshot`]. Only
    /// meaningful on an idle SM (no resident warps or blocks).
    pub fn capture_timing(&self) -> SmTimingState {
        SmTimingState { sub_cores: self.sub_cores.clone(), shared_port: self.shared_port.clone() }
    }

    /// Restores the timing state captured by [`Sm::capture_timing`] in
    /// place (no reallocation) and clears all residency, mirroring the idle
    /// SM the snapshot was taken from. The program cache is dropped: every
    /// kernel in the snapshot's history has completed, so no future warp
    /// can fetch from it.
    pub fn restore_timing(&mut self, snap: &SmTimingState) {
        for (mine, theirs) in self.sub_cores.iter_mut().zip(&snap.sub_cores) {
            for (a, b) in mine.ports.iter_mut().zip(theirs.ports.iter()) {
                a.copy_state_from(b);
            }
            mine.cursor = theirs.cursor;
        }
        self.shared_port.copy_state_from(&snap.shared_port);
        self.warps.clear();
        self.resident.clear();
        self.used_threads = 0;
        self.used_blocks = 0;
        self.used_shared = 0;
        self.used_regs = 0;
        for p in &mut self.programs {
            *p = None;
        }
        self.next_wake_cache = u64::MAX;
        self.sched_wake = [u64::MAX; MAX_SCHEDULERS];
        self.pending_halt = false;
    }

    fn recompute_next_wake(&mut self) {
        self.next_wake_cache = u64::MAX;
        self.sched_wake = [u64::MAX; MAX_SCHEDULERS];
        for i in 0..self.warps.len() {
            if let Some(t) = self.warps.wake_time(i) {
                if t < self.next_wake_cache {
                    self.next_wake_cache = t;
                }
                let s = self.warps.scheduler[i] as usize;
                if t < self.sched_wake[s] {
                    self.sched_wake[s] = t;
                }
            }
        }
    }

    /// The contiguous warp-slot range `lo..hi` of one resident block.
    /// Blocks are placed as contiguous slot runs and only ever removed
    /// whole, so the run survives every removal; the debug assert enforces
    /// the invariant.
    fn warp_range(&self, kernel: KernelId, block_id: u32, warps_total: u32) -> (usize, usize) {
        let lo = (0..self.warps.len())
            .find(|&i| self.warps.kernel[i] == kernel && self.warps.block_id[i] == block_id)
            .expect("block has resident warps");
        let hi = lo + warps_total as usize;
        debug_assert!(
            hi <= self.warps.len()
                && (lo..hi)
                    .all(|i| self.warps.kernel[i] == kernel && self.warps.block_id[i] == block_id),
            "a block's warps form one contiguous slot run"
        );
        (lo, hi)
    }

    fn collect_finished_blocks(
        &mut self,
        now: u64,
        records: &mut Vec<(KernelId, BlockRecord)>,
        record_arena: &mut Vec<BlockRecord>,
    ) {
        let mut finished_any = false;
        let mut b = 0;
        while b < self.resident.len() {
            if self.resident[b].warps_halted >= self.resident[b].warps_total {
                let rb = self.resident.swap_remove(b);
                // Release resources.
                self.used_blocks -= 1;
                self.used_threads -= rb.res.threads;
                self.used_shared -= rb.res.shared_mem_bytes;
                self.used_regs -= rb.res.total_registers();
                // Harvest warp results (ordered by warp-in-block) into a
                // pooled record: the warps' filled buffers swap into the
                // record's slots and the record's retired buffers flow back
                // to the warp table's spare pool — no allocation once the
                // pools are warm.
                let total = rb.warps_total as usize;
                let (lo, hi) = self.warp_range(rb.kernel, rb.block_id, rb.warps_total);
                let mut rec = record_arena.pop().unwrap_or_else(BlockRecord::empty);
                rec.warp_results.resize_with(total, Vec::new);
                let (mut instructions, mut fu_ops, mut mem_ops) = (0u64, 0u64, 0u64);
                for i in lo..hi {
                    instructions += self.warps.instructions[i];
                    fu_ops += self.warps.fu_ops[i];
                    mem_ops += self.warps.mem_ops[i];
                    let wib = self.warps.warp_in_block[i] as usize;
                    rec.warp_results[wib].clear();
                    std::mem::swap(&mut rec.warp_results[wib], &mut self.warps.results[i]);
                }
                self.warps.remove_range(lo, hi);
                rec.block_id = rb.block_id;
                rec.sm_id = self.id;
                rec.start_cycle = rb.start_cycle;
                rec.end_cycle = now;
                rec.instructions = instructions;
                rec.fu_ops = fu_ops;
                rec.mem_ops = mem_ops;
                records.push((rb.kernel, rec));
                finished_any = true;
            } else {
                b += 1;
            }
        }
        if finished_any {
            // Warp slots shifted; reset cursors defensively.
            for sc in &mut self.sub_cores {
                sc.cursor = 0;
            }
        }
    }

    /// Executes warp `idx`'s next instruction at cycle `now` — and, when
    /// `budget > 1`, keeps retiring instructions in the same visit for as
    /// long as each completes in exactly one cycle and the *next* one is
    /// warp-private. Every instruction in the run is executed at its exact
    /// architectural cycle (`now`, `now + 1`, ...): register contents, PC
    /// trajectory, result pushes, instruction counters and the final wake
    /// time come out bit-identical to issuing one instruction per
    /// scheduler visit. The run ends early the moment an instruction
    /// stalls (memory, FU port, barrier, halt — or issue-jitter faults
    /// stretching `until` past the next cycle), so only the first
    /// instruction of a batch may touch shared machinery.
    fn execute(&mut self, idx: usize, now: u64, subs: &mut Subsystems<'_>, budget: u64) {
        let mut now = now;
        let mut remaining = budget;
        loop {
            self.execute_one(idx, now, subs);
            remaining -= 1;
            if remaining == 0 || self.warps.until[idx] != now + 1 {
                return;
            }
            let kid = self.warps.kernel[idx];
            let next = self.programs[kid.0 as usize]
                .as_ref()
                .expect("executing warp's kernel has a registered program")
                .fetch(self.warps.pc[idx]);
            if !is_warp_private(next) {
                return;
            }
            now += 1;
        }
    }

    fn execute_one(&mut self, idx: usize, now: u64, subs: &mut Subsystems<'_>) {
        let kid = self.warps.kernel[idx];
        let instr = *self.programs[kid.0 as usize]
            .as_ref()
            .expect("executing warp's kernel has a registered program")
            .fetch(self.warps.pc[idx]);
        // Identity of the issuing warp, captured once for trace emission
        // (distinct names: some match arms bind `kernel`/`block_id` locally).
        let (ev_kernel, ev_block, ev_warp, ev_sched) = (
            kid.0,
            self.warps.block_id[idx],
            self.warps.warp_in_block[idx],
            self.warps.scheduler[idx],
        );
        if let Some(t) = subs.trace.as_mut() {
            t.record(
                now,
                TraceEvent::WarpIssue {
                    sm: self.id,
                    scheduler: ev_sched,
                    kernel: ev_kernel,
                    block: ev_block,
                    warp: ev_warp,
                },
            );
        }
        self.warps.instructions[idx] += 1;
        match instr {
            Instr::Fu { .. } => self.warps.fu_ops[idx] += 1,
            Instr::ConstLoad { .. }
            | Instr::GlobalLoad { .. }
            | Instr::GlobalStore { .. }
            | Instr::SharedLoad { .. }
            | Instr::SharedStore { .. }
            | Instr::AtomicAdd { .. } => self.warps.mem_ops[idx] += 1,
            _ => {}
        }
        // Default: consume this issue slot; one instruction per cycle. The
        // packed encoding (see `warp.rs`) means "blocked until".
        let mut next_until = now + 1;
        let mut next_pc = self.warps.pc[idx] + 1;
        match instr {
            Instr::MovImm { rd, imm } => self.warps.set_reg(idx, rd.0 as usize, imm),
            Instr::Mov { rd, rs } => {
                let v = self.warps.reg(idx, rs.0 as usize);
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::Add { rd, ra, rb } => {
                let v = self
                    .warps
                    .reg(idx, ra.0 as usize)
                    .wrapping_add(self.warps.reg(idx, rb.0 as usize));
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::Sub { rd, ra, rb } => {
                let v = self
                    .warps
                    .reg(idx, ra.0 as usize)
                    .wrapping_sub(self.warps.reg(idx, rb.0 as usize));
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::AddImm { rd, ra, imm } => {
                let v = self.warps.reg(idx, ra.0 as usize).wrapping_add(imm);
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::MulImm { rd, ra, imm } => {
                let v = self.warps.reg(idx, ra.0 as usize).wrapping_mul(imm);
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::AndImm { rd, ra, imm } => {
                let v = self.warps.reg(idx, ra.0 as usize) & imm;
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::Fu { op } => {
                next_until = self.issue_fu(idx, op, now);
            }
            Instr::ConstLoad { addr } => {
                let a = self.warps.reg(idx, addr.0 as usize);
                let domain = kid.0;
                // Cache faults land just before the access — an event site
                // both engine modes reach with the identical access stream.
                if let Some(f) = subs.faults.as_mut() {
                    f.before_const_access(now, self.id, subs.const_mem);
                }
                let access = subs.const_mem.access(self.id as usize, a, now, domain);
                if let Some(t) = subs.trace.as_mut() {
                    t.record(
                        now,
                        TraceEvent::ConstAccess {
                            sm: self.id,
                            kernel: domain,
                            set: access.l1_set,
                            level: access.level,
                        },
                    );
                    if let Some(ev) = access.l1_eviction {
                        t.record(
                            now,
                            TraceEvent::CacheEviction {
                                sm: Some(self.id),
                                set: access.l1_set,
                                evictor: ev.evictor_domain,
                                victim: ev.victim_domain,
                            },
                        );
                    }
                    if let (Some(set), Some(ev)) = (access.l2_set, access.l2_eviction) {
                        t.record(
                            now,
                            TraceEvent::CacheEviction {
                                sm: None,
                                set,
                                evictor: ev.evictor_domain,
                                victim: ev.victim_domain,
                            },
                        );
                    }
                }
                next_until = access.completes_at;
            }
            Instr::GlobalLoad { base, pattern } => {
                let mut lanes = [0u64; 32];
                let n = fill_lanes(&mut lanes, pattern, self.warps.reg(idx, base.0 as usize));
                // LD/ST replay: the instruction re-issues once per coalesced
                // transaction, so poorly coalesced accesses serialize at the
                // warp's own LD/ST port (the self-timing artifact of the
                // paper's Section 10 / Jiang et al.).
                let replays = subs.gmem.transactions(lanes[..n].iter().copied());
                let start = self.acquire_ldst_n(idx, now, replays);
                let access = subs.gmem.load_detailed(lanes[..n].iter().copied(), start);
                if let Some(t) = subs.trace.as_mut() {
                    t.record(
                        now,
                        TraceEvent::GlobalAccess {
                            sm: self.id,
                            kernel: ev_kernel,
                            transactions: access.transactions,
                            queue_cycles: access.queue_cycles,
                            store: false,
                        },
                    );
                }
                next_until = access.completes_at;
            }
            Instr::GlobalStore { base, pattern } => {
                let mut lanes = [0u64; 32];
                let n = fill_lanes(&mut lanes, pattern, self.warps.reg(idx, base.0 as usize));
                let replays = subs.gmem.transactions(lanes[..n].iter().copied());
                let start = self.acquire_ldst_n(idx, now, replays);
                let access = subs.gmem.store_detailed(lanes[..n].iter().copied(), start);
                if let Some(t) = subs.trace.as_mut() {
                    t.record(
                        now,
                        TraceEvent::GlobalAccess {
                            sm: self.id,
                            kernel: ev_kernel,
                            transactions: access.transactions,
                            queue_cycles: access.queue_cycles,
                            store: true,
                        },
                    );
                }
                next_until = access.completes_at;
            }
            Instr::SharedLoad { base, pattern } | Instr::SharedStore { base, pattern } => {
                let start = self.acquire_ldst(idx, now);
                let mut lanes = [0u64; 32];
                let n = fill_lanes(&mut lanes, pattern, self.warps.reg(idx, base.0 as usize));
                let degree = u64::from(gpgpu_mem::bank_conflict_degree(
                    lanes[..n].iter().copied(),
                    SHARED_BANKS,
                    SHARED_WORD_BYTES,
                ));
                // The banks are pipelined: a conflicted access serializes
                // *its own* warp (latency tail) but occupies the SM's
                // shared-memory port for only one issue slot, so competing
                // warps barely notice — the mechanism behind the paper's
                // Section-10 negative result that bank conflicts do not
                // transfer into a covert channel.
                let port_start = self.shared_port.acquire(start, 1);
                next_until =
                    port_start + SHARED_BASE_LATENCY + (degree - 1) * SHARED_CONFLICT_PENALTY;
            }
            Instr::AtomicAdd { base, pattern } => {
                let start = self.acquire_ldst(idx, now);
                let mut lanes = [0u64; 32];
                let n = fill_lanes(&mut lanes, pattern, self.warps.reg(idx, base.0 as usize));
                let access = subs.atomics.access_detailed(lanes[..n].iter().copied(), start);
                if let Some(t) = subs.trace.as_mut() {
                    t.record(
                        now,
                        TraceEvent::AtomicContention {
                            sm: self.id,
                            kernel: ev_kernel,
                            queue_cycles: access.queue_cycles,
                            transactions: access.transactions,
                        },
                    );
                }
                next_until = access.completes_at;
            }
            Instr::ReadClock { rd } => {
                // Quantized under time fuzzing (exact when quantum = 1),
                // plus the seeded offset of clock-perturbation faults.
                let offset = subs.faults.as_mut().map_or(0, |f| f.clock_perturbation(now, self.id));
                self.warps.set_reg(idx, rd.0 as usize, now - now % self.clock_quantum + offset);
            }
            Instr::ReadSpecial { rd, special } => {
                let v = match special {
                    Special::SmId => u64::from(self.id),
                    Special::BlockId => u64::from(ev_block),
                    Special::WarpIdInBlock => u64::from(ev_warp),
                    Special::SchedulerId => u64::from(ev_sched),
                    Special::GridBlocks => self.warps.reg(idx, (gpgpu_isa::NUM_REGS - 1) as usize),
                };
                self.warps.set_reg(idx, rd.0 as usize, v);
            }
            Instr::PushResult { value } => {
                let v = self.warps.reg(idx, value.0 as usize);
                self.warps.results[idx].push(v);
            }
            Instr::Branch { cond, a, b, target } => {
                let av = self.warps.reg(idx, a.0 as usize);
                let bv = match b {
                    Operand::Reg(r) => self.warps.reg(idx, r.0 as usize),
                    Operand::Imm(i) => i,
                };
                if cond.eval(av, bv) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::BarSync => {
                let (kernel, block_id) = (kid, ev_block);
                if let Some(t) = subs.trace.as_mut() {
                    t.record(
                        now,
                        TraceEvent::BarrierArrive {
                            sm: self.id,
                            kernel: ev_kernel,
                            block: ev_block,
                            warp: ev_warp,
                        },
                    );
                }
                let rb = self
                    .resident
                    .iter_mut()
                    .find(|r| r.kernel == kernel && r.block_id == block_id)
                    .expect("warp at barrier belongs to a resident block");
                rb.at_barrier += 1;
                if rb.at_barrier >= rb.warps_total - rb.warps_halted {
                    // Last arrival: release the whole block.
                    rb.at_barrier = 0;
                    self.release_barrier(kernel, block_id, now);
                    next_until = now + 1;
                    if let Some(t) = subs.trace.as_mut() {
                        t.record(
                            now,
                            TraceEvent::BarrierRelease {
                                sm: self.id,
                                kernel: ev_kernel,
                                block: ev_block,
                            },
                        );
                    }
                } else {
                    next_until = UNTIL_AT_BARRIER;
                }
            }
            Instr::Halt => {
                next_until = UNTIL_HALTED;
                self.pending_halt = true;
                let (kernel, block_id) = (kid, ev_block);
                let rb = self
                    .resident
                    .iter_mut()
                    .find(|r| r.kernel == kernel && r.block_id == block_id)
                    .expect("halting warp belongs to a resident block");
                rb.warps_halted += 1;
                // A halting warp may be the last one a barrier was waiting
                // for.
                if rb.warps_halted < rb.warps_total
                    && rb.at_barrier >= rb.warps_total - rb.warps_halted
                {
                    rb.at_barrier = 0;
                    self.release_barrier(kernel, block_id, now);
                    if let Some(t) = subs.trace.as_mut() {
                        t.record(
                            now,
                            TraceEvent::BarrierRelease {
                                sm: self.id,
                                kernel: ev_kernel,
                                block: ev_block,
                            },
                        );
                    }
                }
            }
        }
        // Warp-issue jitter extends the stall of the instruction just
        // issued. The extra delay only ever pushes a wake time further into
        // the future (it is added to an `until > now`), preserving the
        // invariant that an executed warp cannot become ready this cycle.
        // Barrier parks and halts (the two sentinel encodings) are exempt,
        // exactly as the legacy enum match was.
        if next_until < UNTIL_AT_BARRIER {
            if let Some(f) = subs.faults.as_mut() {
                let jitter = f.issue_jitter(now, self.id, ev_sched);
                if jitter > 0 {
                    next_until += jitter;
                }
            }
        }
        self.warps.pc[idx] = next_pc;
        self.warps.until[idx] = next_until;
    }

    /// Wakes every warp of `(kernel, block_id)` parked at a barrier.
    fn release_barrier(&mut self, kernel: KernelId, block_id: u32, now: u64) {
        for i in 0..self.warps.len() {
            if self.warps.kernel[i] == kernel
                && self.warps.block_id[i] == block_id
                && self.warps.until[i] == UNTIL_AT_BARRIER
            {
                self.warps.until[i] = now + 1;
            }
        }
    }

    fn issue_fu(&mut self, idx: usize, op: FuOpKind, now: u64) -> u64 {
        let unit = op.unit();
        let sched = self.warps.scheduler[idx] as usize;
        let nsched = self.spec.num_warp_schedulers;
        let timing = FuTiming::for_op(self.arch, op);
        let occupancy =
            u64::from(self.spec.pools.issue_occupancy(unit, nsched)) * u64::from(timing.micro_ops);
        let start = self.sub_cores[sched].ports[unit_index(unit)].acquire(now, occupancy);
        match self.sub_core_spec.dependence {
            // Scoreboarded issue holds the warp until the result would be
            // available — conservative, since `Fu` ops in this ISA produce
            // no register value anyone reads.
            DependenceMode::Scoreboard => start + occupancy + u64::from(timing.pipeline_depth),
            // Fixed-latency dependence management (Ampere sub-cores): the
            // compiler's control words know nothing consumes the result, so
            // the warp is eligible again as soon as its issue occupancy
            // drains. Port *queueing* (`start - now`) is a dynamic quantity
            // no control word can hide — the contention signal the
            // parallel-sfu channel reads survives, riding on a lower idle
            // baseline, which is exactly what makes the channel faster.
            DependenceMode::FixedLatency => start + occupancy,
        }
    }

    fn acquire_ldst(&mut self, idx: usize, now: u64) -> u64 {
        self.acquire_ldst_n(idx, now, 1)
    }

    /// Issues a memory instruction that replays `replays` times (once per
    /// coalesced transaction). The replays serialize the *issuing warp* —
    /// each re-issue waits its turn — but they are interleaved fairly with
    /// other warps' accesses by the scheduler, so the port is charged only
    /// one base occupancy: the self-timing cost of poor coalescing is
    /// large while the cost to competitors stays negligible (the paper's
    /// Section-10 observation).
    fn acquire_ldst_n(&mut self, idx: usize, now: u64, replays: u64) -> u64 {
        let sched = self.warps.scheduler[idx] as usize;
        let occupancy =
            u64::from(self.spec.pools.issue_occupancy(FuUnit::LdSt, self.spec.num_warp_schedulers));
        let start = self.sub_cores[sched].ports[unit_index(FuUnit::LdSt)].acquire(now, occupancy);
        start + occupancy * replays.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpgpu_isa::ProgramBuilder;
    use gpgpu_spec::presets;

    fn subsystems(dev: &gpgpu_spec::DeviceSpec) -> (ConstHierarchy, AtomicSystem, GlobalMemory) {
        (
            ConstHierarchy::new(dev.num_sms, &dev.const_l1, &dev.const_l2, &dev.mem),
            AtomicSystem::new(&dev.mem, dev.architecture.has_l2_atomics()),
            GlobalMemory::new(&dev.mem),
        )
    }

    #[test]
    fn warps_assigned_round_robin_to_schedulers() {
        let dev = presets::tesla_k40c();
        let mut sm = Sm::new(0, dev.sm, dev.architecture);
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let res = BlockResources { threads: 256, shared_mem_bytes: 0, registers_per_thread: 16 };
        sm.place_block(KernelId(0), 0, 1, res, &p, 0);
        assert_eq!(sm.warps.scheduler, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // The membership bitsets mirror the column.
        assert_eq!(sm.warps.mask(0), 0b0001_0001);
        assert_eq!(sm.warps.mask(3), 0b1000_1000);
    }

    #[test]
    fn resources_charged_and_released() {
        let dev = presets::tesla_k40c();
        let mut sm = Sm::new(0, dev.sm, dev.architecture);
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let res = BlockResources { threads: 128, shared_mem_bytes: 1024, registers_per_thread: 16 };
        sm.place_block(KernelId(0), 0, 1, res, &p, 0);
        assert_eq!(sm.used_threads, 128);
        assert_eq!(sm.used_shared, 1024);
        let (c, a, g) = &mut subsystems(&dev);
        let mut subs = Subsystems { const_mem: c, atomics: a, gmem: g, trace: None, faults: None };
        let mut finished = Vec::new();
        let mut arena = Vec::new();
        sm.step(0, &mut subs, &mut finished, &mut arena, true, 1);
        assert_eq!(finished.len(), 1);
        assert_eq!(sm.used_threads, 0);
        assert_eq!(sm.used_shared, 0);
        assert!(sm.warps.is_empty());
        assert!(!sm.has_work_at(u64::MAX), "empty SM must report no work");
    }

    #[test]
    fn block_fits_respects_every_limit() {
        let dev = presets::tesla_k40c();
        let sm = Sm::new(0, dev.sm, dev.architecture);
        let fits = |t, s, r| {
            sm.block_fits(&BlockResources {
                threads: t,
                shared_mem_bytes: s,
                registers_per_thread: r,
            })
        };
        assert!(fits(2048, 48 * 1024, 16));
        assert!(!fits(2049, 0, 0));
        assert!(!fits(32, 48 * 1024 + 1, 0));
        assert!(!fits(1024, 0, 128)); // 131072 regs > 65536
    }

    #[test]
    fn fu_contention_isolated_to_same_scheduler() {
        // Two warps on different schedulers issuing __sinf in the same cycle
        // both observe base latency; two on the same scheduler queue.
        let dev = presets::tesla_k40c();
        let mut sm = Sm::new(0, dev.sm, dev.architecture);
        let mut b = ProgramBuilder::new();
        b.fu(gpgpu_spec::FuOpKind::SpSinf);
        let p = Arc::new(b.build().unwrap());
        // 8 warps: schedulers 0..3,0..3.
        let res = BlockResources { threads: 256, shared_mem_bytes: 0, registers_per_thread: 16 };
        sm.place_block(KernelId(0), 0, 1, res, &p, 0);
        let (c, a, g) = &mut subsystems(&dev);
        let mut subs = Subsystems { const_mem: c, atomics: a, gmem: g, trace: None, faults: None };
        sm.step(0, &mut subs, &mut Vec::new(), &mut Vec::new(), true, 1);
        // Kepler dispatches 2 warps/scheduler/cycle: warps 0..7 all issued in
        // cycle 0. Same-scheduler pairs (0,4), (1,5)... queue on the SFU port.
        // First warp of each scheduler: occupancy 4 + depth 14 = 18.
        assert_eq!(sm.warps.until[0], 18);
        assert_eq!(sm.warps.until[1], 18);
        // Second warp on the same scheduler starts after the first's
        // occupancy: 4 + 4 + 14 = 22.
        assert_eq!(sm.warps.until[4], 22);
        assert_eq!(sm.warps.until[5], 22);
    }

    #[test]
    fn halt_completes_block_once_all_warps_halt() {
        let dev = presets::tesla_k40c();
        let mut sm = Sm::new(0, dev.sm, dev.architecture);
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let res = BlockResources { threads: 64, shared_mem_bytes: 0, registers_per_thread: 16 };
        sm.place_block(KernelId(0), 0, 1, res, &p, 0);
        let (c, a, g) = &mut subsystems(&dev);
        let mut subs = Subsystems { const_mem: c, atomics: a, gmem: g, trace: None, faults: None };
        // Both warps are on different schedulers; both halt in cycle 0.
        let mut finished = Vec::new();
        let mut arena = Vec::new();
        sm.step(0, &mut subs, &mut finished, &mut arena, true, 1);
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].0, KernelId(0));
        assert_eq!(finished[0].1.warp_results.len(), 2);
    }

    #[test]
    fn pooled_records_are_scrubbed_before_reuse() {
        // A record from the arena carries a *larger* stale warp_results
        // vector with junk data; harvesting into it must resize and clear.
        let dev = presets::tesla_k40c();
        let mut sm = Sm::new(0, dev.sm, dev.architecture);
        let mut b = ProgramBuilder::new();
        b.read_special(gpgpu_isa::Reg(0), Special::WarpIdInBlock);
        b.push_result(gpgpu_isa::Reg(0));
        b.halt();
        let p = Arc::new(b.build().unwrap());
        let res = BlockResources { threads: 64, shared_mem_bytes: 0, registers_per_thread: 16 };
        sm.place_block(KernelId(0), 0, 1, res, &p, 0);
        let (c, a, g) = &mut subsystems(&dev);
        let mut subs = Subsystems { const_mem: c, atomics: a, gmem: g, trace: None, faults: None };
        let mut finished = Vec::new();
        let mut stale = BlockRecord::empty();
        stale.warp_results = vec![vec![99, 98], vec![97], vec![96]];
        let mut arena = vec![stale];
        let mut cycle = 0;
        while finished.is_empty() && cycle < 100 {
            sm.step(cycle, &mut subs, &mut finished, &mut arena, true, cycle + 1);
            cycle += 1;
        }
        assert!(arena.is_empty(), "the pooled record was consumed");
        let rec = &finished[0].1;
        assert_eq!(rec.warp_results.len(), 2);
        assert_eq!(rec.warp_results[0], vec![0]);
        assert_eq!(rec.warp_results[1], vec![1]);
    }
}

#[cfg(test)]
mod barrier_tests {
    use crate::{Device, KernelSpec};
    use gpgpu_isa::{ProgramBuilder, Reg, Special};
    use gpgpu_spec::{presets, FuOpKind, LaunchConfig};

    #[test]
    fn barrier_synchronizes_warps_of_a_block() {
        // Warp 0 does a long FU burst before the barrier; warp 1 reads the
        // clock after the barrier — it must observe a time >= warp 0's
        // pre-barrier work.
        let mut b = ProgramBuilder::new();
        let (w, t) = (Reg(10), Reg(11));
        b.read_special(w, Special::WarpIdInBlock);
        let skip = b.label();
        b.branch(gpgpu_isa::Cond::Ne, w, gpgpu_isa::Operand::Imm(0), skip);
        for _ in 0..20 {
            b.fu(FuOpKind::SpSinf); // ~18 cycles each on Kepler
        }
        b.bind(skip);
        b.bar_sync();
        b.read_clock(t);
        b.push_result(t);
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev
            .launch(0, KernelSpec::new("bar", b.build().unwrap(), LaunchConfig::new(1, 64)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        let r = dev.results(k).unwrap();
        let t0 = r.warp_results(0, 0).unwrap()[0];
        let t1 = r.warp_results(0, 1).unwrap()[0];
        // Both released within a cycle of each other, after warp 0's burst.
        assert!(t0.abs_diff(t1) <= 2, "barrier release skew: {t0} vs {t1}");
        let arrival = r.arrived_at;
        assert!(t1 - arrival >= 20 * 18, "warp 1 did not wait for warp 0's burst");
    }

    #[test]
    fn halting_warp_releases_waiting_barrier() {
        // Warp 0 halts immediately; warp 1 hits a barrier that only warp 1
        // participates in (live warps = 1) — it must not deadlock.
        let mut b = ProgramBuilder::new();
        let w = Reg(10);
        b.read_special(w, Special::WarpIdInBlock);
        let go = b.label();
        b.branch(gpgpu_isa::Cond::Eq, w, gpgpu_isa::Operand::Imm(1), go);
        b.halt(); // warp 0 exits
        b.bind(go);
        b.fu(FuOpKind::SpAdd); // give warp 0 time to halt first
        b.fu(FuOpKind::SpAdd);
        b.bar_sync();
        b.push_result(w);
        let mut dev = Device::new(presets::tesla_k40c());
        let k = dev
            .launch(0, KernelSpec::new("bar2", b.build().unwrap(), LaunchConfig::new(1, 64)))
            .unwrap();
        dev.run_until_idle(1_000_000).unwrap();
        assert_eq!(dev.results(k).unwrap().warp_results(0, 1).unwrap(), &[1]);
    }
}
