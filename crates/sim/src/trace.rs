//! Structured cycle-level event tracing.
//!
//! The paper's reverse-engineering methodology (Section 3, Figure 4) works
//! by *observing* fine-grained timelines — which SM each block landed on,
//! which warp scheduler issued when, which cache set missed — rather than
//! end-to-end aggregates. This module provides that observability for the
//! simulator: a [`TraceSink`] receives typed [`TraceEvent`]s with cycle
//! timestamps from every interesting site in the engine (kernel lifecycle,
//! block placement/preemption/completion, per-scheduler warp issue,
//! constant-cache hits/misses/evictions per set, atomic-unit queueing,
//! global-memory transactions and barrier arrive/release).
//!
//! Tracing is strictly opt-in: a device carries an
//! `Option<Box<dyn TraceSink>>` and every emission site is a single
//! `Option` check — no allocation, no formatting and no event construction
//! happens on the disabled path (the `ablation_engine_speedup` bench
//! enforces this stays under 2%).
//!
//! Two sinks are provided: [`EventTrace`], a fixed-capacity ring buffer
//! that keeps the newest events and counts what it dropped, and
//! [`NullSink`], which only counts (for overhead measurements). Recorded
//! events can be exported to the Chrome trace-event JSON format
//! (`chrome://tracing` / Perfetto) with [`chrome_trace_json`].

use gpgpu_mem::ConstLevel;
use std::any::Any;
use std::fmt;

/// One typed simulator event. All variants are `Copy` and allocation-free
/// so recording never touches the heap; kernel *names* are resolved at
/// export time via a name table (see [`chrome_trace_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel was submitted on a stream; its blocks become eligible for
    /// placement at `arrival`.
    KernelLaunch {
        /// Kernel id (index into the device's launch order).
        kernel: u32,
        /// Stream the kernel was submitted on.
        stream: u32,
        /// Cycle the kernel becomes eligible (submission + overhead +
        /// jitter).
        arrival: u64,
    },
    /// A kernel's last block completed.
    KernelComplete {
        /// Kernel id.
        kernel: u32,
    },
    /// A block was placed on an SM.
    BlockPlaced {
        /// Kernel id.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
        /// Hosting SM.
        sm: u32,
    },
    /// A block was preempted off an SM (SMK policy) and re-queued.
    BlockPreempted {
        /// Kernel id.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
        /// SM the block was evicted from.
        sm: u32,
    },
    /// A block's last warp halted and the block left its SM.
    BlockFinished {
        /// Kernel id.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
        /// SM the block ran on.
        sm: u32,
    },
    /// A warp scheduler issued one instruction of a warp.
    WarpIssue {
        /// SM the warp resides on.
        sm: u32,
        /// Warp scheduler that issued.
        scheduler: u32,
        /// Kernel the warp belongs to.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
        /// Warp index within the block.
        warp: u32,
    },
    /// A constant-memory access was serviced.
    ConstAccess {
        /// SM that issued the access.
        sm: u32,
        /// Kernel (security domain) that issued it.
        kernel: u32,
        /// L1 set the access indexed (after partition remapping).
        set: u64,
        /// Hierarchy level that serviced the access.
        level: ConstLevel,
    },
    /// A constant-cache fill evicted another line.
    CacheEviction {
        /// SM of the L1 the eviction happened in; `None` for the shared L2.
        sm: Option<u32>,
        /// Set the eviction happened in.
        set: u64,
        /// Domain (kernel) performing the fill.
        evictor: u32,
        /// Domain that owned the evicted line.
        victim: u32,
    },
    /// A warp-level atomic was serviced by the atomic units.
    AtomicContention {
        /// SM that issued the atomic.
        sm: u32,
        /// Kernel that issued it.
        kernel: u32,
        /// Cycles the access's transactions queued behind busy units
        /// (0 = uncontended — the paper's Section-6 signal is this number).
        queue_cycles: u64,
        /// Coalesced transactions the warp access produced.
        transactions: u64,
    },
    /// A warp-level global load or store was issued.
    GlobalAccess {
        /// SM that issued the access.
        sm: u32,
        /// Kernel that issued it.
        kernel: u32,
        /// Coalesced transactions the access produced.
        transactions: u64,
        /// Cycles the transactions queued on the bandwidth pipe.
        queue_cycles: u64,
        /// Whether this was a store (`false` = load).
        store: bool,
    },
    /// A warp arrived at a `bar.sync`.
    BarrierArrive {
        /// SM of the block.
        sm: u32,
        /// Kernel the warp belongs to.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
        /// Warp index within the block.
        warp: u32,
    },
    /// The last expected warp arrived and a block's barrier released.
    BarrierRelease {
        /// SM of the block.
        sm: u32,
        /// Kernel the block belongs to.
        kernel: u32,
        /// Block index within the grid.
        block: u32,
    },
    /// A transfer crossed an inter-device link of a [`crate::Topology`]
    /// (peer-to-peer copy or remote atomic).
    LinkTransfer {
        /// Link index within the topology.
        link: u32,
        /// Source device index.
        from: u32,
        /// Destination device index.
        to: u32,
        /// Flits moved.
        flits: u64,
        /// Cycles the transfer queued behind busy lanes (the NVLink
        /// covert channel's signal).
        queue_cycles: u64,
    },
}

/// A [`TraceEvent`] paired with the cycle it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Cycle timestamp (the device clock when the event was emitted).
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Receiver of simulator trace events.
///
/// Installed on a [`crate::Device`] via [`crate::Device::set_trace_sink`];
/// every emission site performs exactly one `Option` check when no sink is
/// installed. Implementations must be cheap: `record` runs inside the cycle
/// engine's hot loop.
pub trait TraceSink: fmt::Debug {
    /// Records one event observed at `cycle`.
    fn record(&mut self, cycle: u64, event: TraceEvent);

    /// Consumes the boxed sink so callers can downcast it back to its
    /// concrete type after a run (see [`crate::Device::take_trace_sink`]).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Default [`EventTrace`] capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// A fixed-capacity ring-buffered trace recorder: keeps the newest
/// `capacity` events and counts how many older ones were overwritten.
///
/// # Example
///
/// ```
/// use gpgpu_sim::{EventTrace, TraceEvent, TraceSink};
///
/// let mut t = EventTrace::with_capacity(2);
/// t.record(1, TraceEvent::KernelComplete { kernel: 0 });
/// t.record(2, TraceEvent::KernelComplete { kernel: 1 });
/// t.record(3, TraceEvent::KernelComplete { kernel: 2 }); // overwrites cycle 1
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.events()[0].cycle, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Write index once the buffer is full (oldest record's position).
    next: usize,
    dropped: u64,
}

impl Default for EventTrace {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl EventTrace {
    /// A recorder keeping the newest `capacity` events (clamped to >= 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventTrace { buf: Vec::new(), capacity, next: 0, dropped: 0 }
    }

    /// Number of events currently held (<= capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records in chronological order (oldest first), as a fresh
    /// allocation. Prefer [`EventTrace::iter`] (borrowing) or
    /// [`EventTrace::take_events`] (draining) when a copy is not needed.
    pub fn events(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.capacity || self.next == 0 {
            return self.buf.clone();
        }
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Borrowing iterator over the held records in chronological order
    /// (oldest first) — no copy of the ring.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        // Once the ring has wrapped, `next` is the oldest record's slot.
        let split = if self.buf.len() < self.capacity { 0 } else { self.next };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Removes and returns the held records in chronological order, leaving
    /// the recorder empty (the drop counter is kept). Unlike
    /// [`EventTrace::events`] this rotates the existing buffer in place
    /// instead of copying it.
    pub fn take_events(&mut self) -> Vec<TraceRecord> {
        let split = if self.buf.len() < self.capacity { 0 } else { self.next };
        self.buf.rotate_left(split);
        self.next = 0;
        std::mem::take(&mut self.buf)
    }

    /// Discards all held records (the drop counter is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }
}

impl TraceSink for EventTrace {
    fn record(&mut self, cycle: u64, event: TraceEvent) {
        let rec = TraceRecord { cycle, event };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A sink that counts events and discards them — the cheapest possible
/// enabled path, used by the tracing-overhead ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink {
    /// Events received so far.
    pub events: u64,
}

impl TraceSink for NullSink {
    fn record(&mut self, _cycle: u64, _event: TraceEvent) {
        self.events += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The display name of kernel `k`: its entry in `kernel_names`, or a
/// `kernel<k>` placeholder when the table is short.
fn kernel_label(kernel_names: &[String], k: u32) -> String {
    let mut out = String::new();
    match kernel_names.get(k as usize) {
        Some(name) => json_escape(name, &mut out),
        None => out.push_str(&format!("kernel{k}")),
    }
    out
}

/// Process id used for device-level lanes in the Chrome trace (SM `i` maps
/// to pid `i + 1`).
const DEVICE_PID: u32 = 0;

fn pid_of(sm: Option<u32>) -> u32 {
    sm.map_or(DEVICE_PID, |s| s + 1)
}

/// Exports records to the Chrome trace-event JSON format, loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Mapping: pid 0 is the device (kernel launches/completions, L2
/// evictions); SM `i` is pid `i + 1`. Block residency renders as async
/// `b`/`e` spans named after the kernel; everything else is an instant
/// event carrying its fields in `args`. Timestamps are raw cycles.
///
/// The output is built without any serialization dependency and is
/// byte-deterministic for a deterministic simulation — the trace golden
/// test diffs it byte-for-byte against a checked-in file.
///
/// `kernel_names` maps kernel id -> diagnostic name (see
/// [`crate::Device::kernel_names`]); out-of-range ids render as
/// `kernel<id>`.
pub fn chrome_trace_json(records: &[TraceRecord], kernel_names: &[String]) -> String {
    use std::collections::BTreeSet;
    let mut lines: Vec<String> = Vec::with_capacity(records.len() + 8);
    // Metadata: name the device process and every SM process that appears.
    let mut sms: BTreeSet<u32> = BTreeSet::new();
    let mut device_used = false;
    for r in records {
        match r.event {
            TraceEvent::KernelLaunch { .. }
            | TraceEvent::KernelComplete { .. }
            | TraceEvent::LinkTransfer { .. } => {
                device_used = true;
            }
            TraceEvent::CacheEviction { sm, .. } => match sm {
                Some(s) => {
                    sms.insert(s);
                }
                None => device_used = true,
            },
            TraceEvent::BlockPlaced { sm, .. }
            | TraceEvent::BlockPreempted { sm, .. }
            | TraceEvent::BlockFinished { sm, .. }
            | TraceEvent::WarpIssue { sm, .. }
            | TraceEvent::ConstAccess { sm, .. }
            | TraceEvent::AtomicContention { sm, .. }
            | TraceEvent::GlobalAccess { sm, .. }
            | TraceEvent::BarrierArrive { sm, .. }
            | TraceEvent::BarrierRelease { sm, .. } => {
                sms.insert(sm);
            }
        }
    }
    if device_used {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{DEVICE_PID},\"tid\":0,\
             \"args\":{{\"name\":\"device\"}}}}"
        ));
    }
    for sm in &sms {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"SM {sm}\"}}}}",
            sm + 1
        ));
    }
    for r in records {
        let ts = r.cycle;
        let line = match r.event {
            TraceEvent::KernelLaunch { kernel, stream, arrival } => format!(
                "{{\"name\":\"launch {}\",\"cat\":\"kernel\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{DEVICE_PID},\"tid\":{stream},\"s\":\"p\",\
                 \"args\":{{\"kernel\":{kernel},\"arrival\":{arrival}}}}}",
                kernel_label(kernel_names, kernel)
            ),
            TraceEvent::KernelComplete { kernel } => format!(
                "{{\"name\":\"complete {}\",\"cat\":\"kernel\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{DEVICE_PID},\"tid\":{kernel},\"s\":\"p\",\
                 \"args\":{{\"kernel\":{kernel}}}}}",
                kernel_label(kernel_names, kernel)
            ),
            TraceEvent::BlockPlaced { kernel, block, sm } => format!(
                "{{\"name\":\"{} b{block}\",\"cat\":\"block\",\"ph\":\"b\",\
                 \"id\":{},\"ts\":{ts},\"pid\":{},\"tid\":{kernel},\
                 \"args\":{{\"kernel\":{kernel},\"block\":{block}}}}}",
                kernel_label(kernel_names, kernel),
                (u64::from(kernel) << 32) | u64::from(block),
                pid_of(Some(sm))
            ),
            TraceEvent::BlockPreempted { kernel, block, sm } => format!(
                "{{\"name\":\"{} b{block}\",\"cat\":\"block\",\"ph\":\"e\",\
                 \"id\":{},\"ts\":{ts},\"pid\":{},\"tid\":{kernel},\
                 \"args\":{{\"preempted\":true}}}}",
                kernel_label(kernel_names, kernel),
                (u64::from(kernel) << 32) | u64::from(block),
                pid_of(Some(sm))
            ),
            TraceEvent::BlockFinished { kernel, block, sm } => format!(
                "{{\"name\":\"{} b{block}\",\"cat\":\"block\",\"ph\":\"e\",\
                 \"id\":{},\"ts\":{ts},\"pid\":{},\"tid\":{kernel},\
                 \"args\":{{}}}}",
                kernel_label(kernel_names, kernel),
                (u64::from(kernel) << 32) | u64::from(block),
                pid_of(Some(sm))
            ),
            TraceEvent::WarpIssue { sm, scheduler, kernel, block, warp } => format!(
                "{{\"name\":\"issue {}\",\"cat\":\"issue\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{scheduler},\"s\":\"t\",\
                 \"args\":{{\"block\":{block},\"warp\":{warp}}}}}",
                kernel_label(kernel_names, kernel),
                pid_of(Some(sm))
            ),
            TraceEvent::ConstAccess { sm, kernel, set, level } => {
                let lvl = match level {
                    ConstLevel::L1 => "L1",
                    ConstLevel::L2 => "L2",
                    ConstLevel::Memory => "mem",
                };
                format!(
                    "{{\"name\":\"const {lvl}\",\"cat\":\"const\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":{},\"tid\":{kernel},\"s\":\"t\",\
                     \"args\":{{\"set\":{set}}}}}",
                    pid_of(Some(sm))
                )
            }
            TraceEvent::CacheEviction { sm, set, evictor, victim } => format!(
                "{{\"name\":\"evict\",\"cat\":\"evict\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{evictor},\"s\":\"t\",\
                 \"args\":{{\"set\":{set},\"evictor\":{evictor},\"victim\":{victim}}}}}",
                pid_of(sm)
            ),
            TraceEvent::AtomicContention { sm, kernel, queue_cycles, transactions } => format!(
                "{{\"name\":\"atomic\",\"cat\":\"atomic\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{kernel},\"s\":\"t\",\
                 \"args\":{{\"queue_cycles\":{queue_cycles},\"transactions\":{transactions}}}}}",
                pid_of(Some(sm))
            ),
            TraceEvent::GlobalAccess { sm, kernel, transactions, queue_cycles, store } => format!(
                "{{\"name\":\"{}\",\"cat\":\"gmem\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{kernel},\"s\":\"t\",\
                 \"args\":{{\"transactions\":{transactions},\"queue_cycles\":{queue_cycles}}}}}",
                if store { "store" } else { "load" },
                pid_of(Some(sm))
            ),
            TraceEvent::BarrierArrive { sm, kernel, block, warp } => format!(
                "{{\"name\":\"bar arrive\",\"cat\":\"barrier\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{kernel},\"s\":\"t\",\
                 \"args\":{{\"block\":{block},\"warp\":{warp}}}}}",
                pid_of(Some(sm))
            ),
            TraceEvent::BarrierRelease { sm, kernel, block } => format!(
                "{{\"name\":\"bar release\",\"cat\":\"barrier\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{},\"tid\":{kernel},\"s\":\"t\",\
                 \"args\":{{\"block\":{block}}}}}",
                pid_of(Some(sm))
            ),
            TraceEvent::LinkTransfer { link, from, to, flits, queue_cycles } => format!(
                "{{\"name\":\"link {from}->{to}\",\"cat\":\"link\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":{DEVICE_PID},\"tid\":{link},\"s\":\"p\",\
                 \"args\":{{\"link\":{link},\"flits\":{flits},\"queue_cycles\":{queue_cycles}}}}}"
            ),
        };
        lines.push(line);
    }
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(k: u32) -> TraceEvent {
        TraceEvent::KernelComplete { kernel: k }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut t = EventTrace::with_capacity(3);
        for i in 0..5u64 {
            t.record(i, ev(i as u32));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.events().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2, "clear keeps the drop counter");
    }

    #[test]
    fn ring_below_capacity_is_in_order() {
        let mut t = EventTrace::with_capacity(8);
        for i in 0..4u64 {
            t.record(i, ev(0));
        }
        assert_eq!(t.dropped(), 0);
        let cycles: Vec<u64> = t.events().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut t = EventTrace::with_capacity(0);
        t.record(7, ev(0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_borrows_in_chronological_order() {
        // Unwrapped ring (below capacity): storage order is time order.
        let mut t = EventTrace::with_capacity(4);
        for i in 0..3u64 {
            t.record(i, ev(0));
        }
        let cycles: Vec<u64> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        // Wrapped ring: the oldest slot is mid-buffer; iter stitches the
        // two halves back together without cloning anything.
        for i in 3..6u64 {
            t.record(i, ev(0));
        }
        let cycles: Vec<u64> = t.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5]);
        assert_eq!(t.len(), 4, "iter leaves the trace intact");
    }

    #[test]
    fn take_events_drains_in_order_and_resets_the_ring() {
        let mut t = EventTrace::with_capacity(3);
        for i in 0..5u64 {
            t.record(i, ev(i as u32));
        }
        let drained = t.take_events();
        assert_eq!(drained.iter().map(|r| r.cycle).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(t.is_empty(), "take_events leaves the trace empty");
        assert_eq!(t.dropped(), 2, "the overflow counter survives the drain");
        // The drained trace keeps recording at its configured capacity.
        t.record(9, ev(9));
        assert_eq!(t.take_events().iter().map(|r| r.cycle).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn null_sink_counts() {
        let mut n = NullSink::default();
        n.record(0, ev(0));
        n.record(1, ev(1));
        assert_eq!(n.events, 2);
        let any = Box::new(n).into_any();
        assert_eq!(any.downcast::<NullSink>().unwrap().events, 2);
    }

    #[test]
    fn event_trace_downcasts_through_into_any() {
        let mut t = EventTrace::with_capacity(4);
        t.record(9, ev(3));
        let boxed: Box<dyn TraceSink> = Box::new(t);
        let back = boxed.into_any().downcast::<EventTrace>().unwrap();
        assert_eq!(back.events()[0].cycle, 9);
    }

    #[test]
    fn chrome_export_names_escapes_and_structure() {
        let names = vec!["spy \"1\"".to_string()];
        let records = vec![
            TraceRecord {
                cycle: 5,
                event: TraceEvent::KernelLaunch { kernel: 0, stream: 1, arrival: 20 },
            },
            TraceRecord {
                cycle: 21,
                event: TraceEvent::BlockPlaced { kernel: 0, block: 3, sm: 2 },
            },
            TraceRecord {
                cycle: 30,
                event: TraceEvent::ConstAccess { sm: 2, kernel: 0, set: 4, level: ConstLevel::L2 },
            },
            TraceRecord {
                cycle: 31,
                event: TraceEvent::CacheEviction { sm: None, set: 9, evictor: 1, victim: 0 },
            },
            TraceRecord {
                cycle: 40,
                event: TraceEvent::BlockFinished { kernel: 1, block: 0, sm: 2 },
            },
        ];
        let json = chrome_trace_json(&records, &names);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\\\"1\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"name\":\"SM 2\""), "SM metadata present");
        assert!(json.contains("\"name\":\"device\""), "device metadata present");
        assert!(json.contains("kernel1 b0"), "name-table fallback used");
        assert!(json.contains("\"set\":9"));
        // Balanced braces outside strings (cheap structural sanity; the
        // golden test runs the full scanner).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn chrome_export_renders_link_transfers_on_the_device_lane() {
        let records = vec![TraceRecord {
            cycle: 12,
            event: TraceEvent::LinkTransfer {
                link: 0,
                from: 1,
                to: 0,
                flits: 256,
                queue_cycles: 37,
            },
        }];
        let json = chrome_trace_json(&records, &[]);
        assert!(json.contains("\"name\":\"device\""), "link events live on the device pid");
        assert!(json.contains("link 1->0"), "{json}");
        assert!(json.contains("\"queue_cycles\":37"), "{json}");
        assert!(json.contains("\"flits\":256"), "{json}");
    }

    #[test]
    fn chrome_export_empty_records() {
        let json = chrome_trace_json(&[], &[]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}
