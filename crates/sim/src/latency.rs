//! Extracted per-op latency tables and per-family contention models — the
//! data the analytical fast path ([`crate::tuning::EngineMode::Analytical`])
//! predicts from.
//!
//! A [`LatencyTable`] is *measured, not authored*: the characterization
//! suite in `gpgpu-covert::analytic` runs short cycle-engine probes (the
//! same way the Wong-style microbench recovers cache geometry) and records
//! two kinds of facts here:
//!
//! * **per-op latencies** ([`OpClass`]): steady-state cycles for one
//!   contention-sensitive operation, idle and contended variants as
//!   separate classes (`sfu_idle` / `sfu_contended`, ...);
//! * **per-family affine cost models** ([`FamilyModel`]): for each covert
//!   channel family, total transmission cycles as
//!   `fixed + bits * (base + slope * knob)` where `knob` is the family's
//!   symbol-time control (prime+probe iterations, pacing window, ...),
//!   fitted from probe transmissions at the recorded `knob_lo..knob_hi`
//!   range.
//!
//! The textual form round-trips exactly ([`LatencyTable::to_spec`] /
//! [`LatencyTable::from_spec`]) — floats are printed in Rust's
//! shortest-round-trip representation — so a table dumped by the CLI's
//! `characterize` subcommand reloads bit-identically.

use std::collections::BTreeMap;
use std::fmt;

/// One contention-sensitive operation class with a measured steady-state
/// latency. Idle and contended variants are distinct classes so a table row
/// is always a single number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Constant load hitting the per-SM L1 constant cache.
    L1Hit,
    /// Constant load missing L1 and hitting the shared L2 constant cache.
    L2Hit,
    /// SFU op issued with no co-resident contender on the warp scheduler.
    SfuIdle,
    /// SFU op under saturating same-scheduler contention.
    SfuContended,
    /// Atomic read-modify-write round trip with no contender.
    AtomicIdle,
    /// Atomic read-modify-write under same-address contention.
    AtomicContended,
}

impl OpClass {
    /// Every operation class, in table order.
    pub const ALL: [OpClass; 6] = [
        OpClass::L1Hit,
        OpClass::L2Hit,
        OpClass::SfuIdle,
        OpClass::SfuContended,
        OpClass::AtomicIdle,
        OpClass::AtomicContended,
    ];

    /// The spec label of this class (`l1_hit`, `sfu_contended`, ...).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::L1Hit => "l1_hit",
            OpClass::L2Hit => "l2_hit",
            OpClass::SfuIdle => "sfu_idle",
            OpClass::SfuContended => "sfu_contended",
            OpClass::AtomicIdle => "atomic_idle",
            OpClass::AtomicContended => "atomic_contended",
        }
    }

    /// Parses a spec label back into its class.
    pub fn from_label(label: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Affine transmission-cost model for one covert channel family:
/// `cycles(bits, knob) = fixed + bits * (base + slope * knob)`.
///
/// The knob is whatever the family uses to trade symbol time for error
/// rate — prime+probe iterations for the cache/SFU/atomic families, the
/// pacing window for NVLink, nothing (slope 0) for the synchronized
/// channel. `knob_lo`/`knob_hi` record the range the fit observed, so a
/// consumer can tell interpolation from extrapolation.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyModel {
    /// Channel family label (`l1`, `sfu`, `atomic`, `sync`, `nvlink`).
    pub family: String,
    /// Name of the symbol-time knob the slope applies to.
    pub knob: String,
    /// Per-message fixed cycles (handshake, calibration, final drain).
    pub fixed: f64,
    /// Per-bit cycles at knob = 0 (launch overhead, decode, epilogue).
    pub base: f64,
    /// Per-bit cycles added per knob unit.
    pub slope: f64,
    /// Smallest knob value the fit observed.
    pub knob_lo: f64,
    /// Largest knob value the fit observed.
    pub knob_hi: f64,
    /// Saturation probability of a 1-bit decode failure as the knob
    /// starves (0 for jitter-free families — they never miss the overlap).
    pub err_sat: f64,
    /// Knob value below which 1-bit failures saturate at [`err_sat`]: the
    /// failure probability falls off as `(err_knee / knob)^2` above it —
    /// quadratic because *both* colluding launches draw independent uniform
    /// jitter, so the miss region is the corner of a square.
    ///
    /// [`err_sat`]: FamilyModel::err_sat
    pub err_knee: f64,
}

impl FamilyModel {
    /// Predicted total transmission cycles for `bits` message bits at the
    /// given knob setting.
    pub fn cycles(&self, bits: usize, knob: f64) -> f64 {
        self.fixed + bits as f64 * self.cycles_per_bit(knob)
    }

    /// Predicted cycles per bit at the given knob setting.
    pub fn cycles_per_bit(&self, knob: f64) -> f64 {
        self.base + self.slope * knob
    }

    /// Predicted probability that a transmitted 1-bit decodes as 0 at the
    /// given knob setting (0-bits never err: an idle resource cannot fake
    /// contention). Monotone non-increasing in the knob.
    pub fn one_bit_failure(&self, knob: f64) -> f64 {
        if self.err_sat <= 0.0 || self.err_knee <= 0.0 {
            return 0.0;
        }
        if knob <= self.err_knee {
            return self.err_sat;
        }
        self.err_sat * (self.err_knee / knob).powi(2)
    }
}

/// Why a [`LatencyTable::from_spec`] parse failed, pointing at the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyTableError {
    /// 1-based line number of the offending line (0 for a missing header).
    pub line: usize,
    /// Human-readable description of the problem.
    pub reason: String,
}

impl fmt::Display for LatencyTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "latency table line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for LatencyTableError {}

const HEADER: &str = "gpgpu-latency-table v1";

/// A characterized device: per-op latencies plus per-family cost models,
/// with an exactly round-tripping textual form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyTable {
    /// Device preset label the table was extracted from.
    pub device: String,
    ops: BTreeMap<OpClass, f64>,
    families: BTreeMap<String, FamilyModel>,
}

impl LatencyTable {
    /// An empty table for the named device preset.
    pub fn new(device: impl Into<String>) -> Self {
        LatencyTable { device: device.into(), ops: BTreeMap::new(), families: BTreeMap::new() }
    }

    /// Records (or overwrites) a per-op latency.
    pub fn set_op(&mut self, class: OpClass, cycles: f64) {
        self.ops.insert(class, cycles);
    }

    /// The recorded latency for `class`, if characterized.
    pub fn op(&self, class: OpClass) -> Option<f64> {
        self.ops.get(&class).copied()
    }

    /// Records (or overwrites) a family model, keyed by its family label.
    pub fn set_family(&mut self, model: FamilyModel) {
        self.families.insert(model.family.clone(), model);
    }

    /// The recorded model for `family`, if characterized.
    pub fn family(&self, family: &str) -> Option<&FamilyModel> {
        self.families.get(family)
    }

    /// All recorded `(class, cycles)` rows, in table order.
    pub fn ops(&self) -> impl Iterator<Item = (OpClass, f64)> + '_ {
        self.ops.iter().map(|(&c, &v)| (c, v))
    }

    /// All recorded family models, in label order.
    pub fn families(&self) -> impl Iterator<Item = &FamilyModel> {
        self.families.values()
    }

    /// Serializes the table. Floats use Rust's shortest round-trip
    /// representation, so `from_spec(to_spec(t)) == t` exactly.
    pub fn to_spec(&self) -> String {
        let mut out = format!("{HEADER} device={}\n", self.device);
        for (class, cycles) in self.ops() {
            out.push_str(&format!("op {} {cycles}\n", class.label()));
        }
        for m in self.families() {
            out.push_str(&format!(
                "family {} knob={} fixed={} base={} slope={} lo={} hi={} esat={} eknee={}\n",
                m.family,
                m.knob,
                m.fixed,
                m.base,
                m.slope,
                m.knob_lo,
                m.knob_hi,
                m.err_sat,
                m.err_knee
            ));
        }
        out
    }

    /// Parses a table serialized by [`LatencyTable::to_spec`].
    ///
    /// # Errors
    ///
    /// [`LatencyTableError`] naming the offending line: bad header, unknown
    /// op class, malformed number, or an unrecognized row kind.
    pub fn from_spec(text: &str) -> Result<Self, LatencyTableError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or(LatencyTableError { line: 0, reason: "empty input (missing header)".into() })?;
        let device = header
            .strip_prefix(HEADER)
            .and_then(|r| r.trim().strip_prefix("device="))
            .ok_or_else(|| LatencyTableError {
                line: 1,
                reason: format!("expected `{HEADER} device=<name>`, found `{header}`"),
            })?;
        let mut table = LatencyTable::new(device);
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let err = |reason: String| LatencyTableError { line: line_no, reason };
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("op") => {
                    let label = parts.next().ok_or_else(|| err("op row missing class".into()))?;
                    let class = OpClass::from_label(label)
                        .ok_or_else(|| err(format!("unknown op class `{label}`")))?;
                    let value = parts.next().ok_or_else(|| err("op row missing value".into()))?;
                    let cycles = value
                        .parse::<f64>()
                        .map_err(|_| err(format!("bad op latency `{value}`")))?;
                    table.set_op(class, cycles);
                }
                Some("family") => {
                    let family =
                        parts.next().ok_or_else(|| err("family row missing label".into()))?;
                    let mut model = FamilyModel {
                        family: family.to_string(),
                        knob: String::new(),
                        fixed: 0.0,
                        base: 0.0,
                        slope: 0.0,
                        knob_lo: 0.0,
                        knob_hi: 0.0,
                        err_sat: 0.0,
                        err_knee: 0.0,
                    };
                    for field in parts {
                        let (key, value) = field
                            .split_once('=')
                            .ok_or_else(|| err(format!("bad family field `{field}`")))?;
                        if key == "knob" {
                            model.knob = value.to_string();
                            continue;
                        }
                        let v = value
                            .parse::<f64>()
                            .map_err(|_| err(format!("bad family value `{field}`")))?;
                        match key {
                            "fixed" => model.fixed = v,
                            "base" => model.base = v,
                            "slope" => model.slope = v,
                            "lo" => model.knob_lo = v,
                            "hi" => model.knob_hi = v,
                            "esat" => model.err_sat = v,
                            "eknee" => model.err_knee = v,
                            other => return Err(err(format!("unknown family field `{other}`"))),
                        }
                    }
                    table.set_family(model);
                }
                Some(other) => return Err(err(format!("unknown row kind `{other}`"))),
                None => {}
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> LatencyTable {
        let mut t = LatencyTable::new("kepler");
        t.set_op(OpClass::L1Hit, 49.0);
        t.set_op(OpClass::SfuContended, 30.25);
        t.set_family(FamilyModel {
            family: "l1".into(),
            knob: "iterations".into(),
            fixed: 0.0,
            base: 8437.5,
            slope: 1568.0625,
            knob_lo: 2.0,
            knob_hi: 16.0,
            err_sat: 0.625,
            err_knee: 3.5,
        });
        t
    }

    #[test]
    fn spec_round_trips_exactly() {
        let t = sample_table();
        let text = t.to_spec();
        assert_eq!(LatencyTable::from_spec(&text).unwrap(), t);
        // Shortest-round-trip floats survive a second trip too.
        assert_eq!(
            LatencyTable::from_spec(&LatencyTable::from_spec(&text).unwrap().to_spec()),
            Ok(t)
        );
    }

    #[test]
    fn op_labels_round_trip() {
        for class in OpClass::ALL {
            assert_eq!(OpClass::from_label(class.label()), Some(class));
        }
        assert_eq!(OpClass::from_label("warp9"), None);
    }

    #[test]
    fn family_model_is_affine() {
        let m = sample_table().family("l1").unwrap().clone();
        let cpb = m.cycles_per_bit(4.0);
        assert!((cpb - (8437.5 + 4.0 * 1568.0625)).abs() < 1e-9);
        assert!((m.cycles(8, 4.0) - 8.0 * cpb).abs() < 1e-9);
    }

    #[test]
    fn one_bit_failure_saturates_then_falls_quadratically() {
        let m = sample_table().family("l1").unwrap().clone();
        assert_eq!(m.one_bit_failure(1.0), 0.625, "below the knee: saturated");
        assert_eq!(m.one_bit_failure(3.5), 0.625, "at the knee: saturated");
        let p7 = m.one_bit_failure(7.0);
        assert!((p7 - 0.625 * 0.25).abs() < 1e-12, "double the knee: quarter, got {p7}");
        // Monotone non-increasing in the knob.
        let probes: Vec<f64> = (1..40).map(|n| m.one_bit_failure(n as f64)).collect();
        assert!(probes.windows(2).all(|w| w[1] <= w[0] + 1e-15));
        // Jitter-free families never fail.
        let clean = FamilyModel { err_sat: 0.0, err_knee: 0.0, ..m };
        assert_eq!(clean.one_bit_failure(1.0), 0.0);
    }

    #[test]
    fn parse_errors_point_at_the_line() {
        let e = LatencyTable::from_spec("nonsense").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("expected"), "{e}");
        let text = format!("{HEADER} device=kepler\nop warp9 12\n");
        let e = LatencyTable::from_spec(&text).unwrap_err();
        assert_eq!((e.line, e.reason.contains("unknown op class")), (2, true));
        let text = format!("{HEADER} device=kepler\nfamily l1 base=x\n");
        assert!(LatencyTable::from_spec(&text).unwrap_err().reason.contains("bad family value"));
        let text = format!("{HEADER} device=kepler\nrow l1\n");
        assert!(LatencyTable::from_spec(&text).unwrap_err().reason.contains("unknown row kind"));
        assert_eq!(LatencyTable::from_spec("").unwrap_err().line, 0);
    }

    #[test]
    fn missing_rows_read_as_none() {
        let t = LatencyTable::new("kepler");
        assert_eq!(t.op(OpClass::L1Hit), None);
        assert!(t.family("l1").is_none());
        assert_eq!(t.ops().count(), 0);
    }
}
