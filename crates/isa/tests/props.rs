//! Property tests for the ISA: the builder only ever produces valid
//! programs, validation catches all malformed inputs, and the disassembler
//! is total.

use gpgpu_isa::{Cond, Instr, LanePattern, Operand, Program, ProgramBuilder, Reg, NUM_REGS};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u16..NUM_REGS).prop_map(Reg)
}

fn any_instr(max_target: u32) -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), any::<u64>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        (any_reg(), any_reg()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
        (any_reg(), any_reg(), any::<u64>()).prop_map(|(rd, ra, imm)| Instr::AddImm {
            rd,
            ra,
            imm
        }),
        any_reg().prop_map(|rd| Instr::ReadClock { rd }),
        any_reg().prop_map(|value| Instr::PushResult { value }),
        (any_reg(), 0..=255u64).prop_map(|(base, s)| Instr::GlobalLoad {
            base,
            pattern: LanePattern::Consecutive { elem_bytes: s + 1 },
        }),
        (0..max_target).prop_map(|target| Instr::Jump { target }),
        (any_reg(), any::<u64>(), 0..max_target).prop_map(|(a, imm, target)| Instr::Branch {
            cond: Cond::Ne,
            a,
            b: Operand::Imm(imm),
            target,
        }),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// The builder's output always validates.
    #[test]
    fn builder_output_always_validates(
        ops in proptest::collection::vec(0u8..6, 1..64),
    ) {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        for (i, op) in ops.iter().enumerate() {
            let r = Reg((i % NUM_REGS as usize) as u16);
            match op {
                0 => { b.mov_imm(r, i as u64); }
                1 => { b.add_imm(r, r, 1); }
                2 => { b.read_clock(r); }
                3 => { b.push_result(r); }
                4 => { b.fu(gpgpu_spec::FuOpKind::SpAdd); }
                _ => { b.branch(Cond::Eq, r, Operand::Imm(u64::MAX), top); }
            }
        }
        let p = b.build().expect("builder output must validate");
        prop_assert!(p.len() >= ops.len());
    }

    /// Validation accepts exactly the well-formed programs.
    #[test]
    fn arbitrary_valid_instruction_sequences_validate(
        n in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let mut instrs = Vec::with_capacity(n);
        for _ in 0..n {
            let instr = any_instr(n as u32)
                .new_tree(&mut runner)
                .unwrap()
                .current();
            instrs.push(instr);
        }
        let p = Program::from_instrs(instrs);
        prop_assert!(p.is_ok(), "{p:?}");
    }

    /// Out-of-range registers are always rejected.
    #[test]
    fn oversized_registers_rejected(r in NUM_REGS..u16::MAX) {
        let p = Program::from_instrs(vec![Instr::MovImm { rd: Reg(r), imm: 0 }]);
        prop_assert!(p.is_err());
    }

    /// Out-of-range branch targets are always rejected. The program is two
    /// instructions long, so 2 is the first out-of-range target (1 would be
    /// a valid jump to the halt).
    #[test]
    fn oversized_targets_rejected(extra in 0u32..1000) {
        let p = Program::from_instrs(vec![Instr::Jump { target: 2 + extra }, Instr::Halt]);
        prop_assert!(p.is_err());
    }

    /// Disassembly is total and non-empty for every instruction.
    #[test]
    fn disassembly_is_total(n in 1usize..32) {
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..n {
            let instr = any_instr(64).new_tree(&mut runner).unwrap().current();
            prop_assert!(!instr.to_string().is_empty());
        }
    }

    /// Lane patterns always produce exactly 32 addresses, first = base.
    #[test]
    fn lane_patterns_produce_warp_width_addresses(
        base in 0u64..1 << 40,
        stride in 1u64..4096,
    ) {
        for pattern in [
            LanePattern::Uniform,
            LanePattern::Consecutive { elem_bytes: stride },
            LanePattern::Spread { stride_bytes: stride },
        ] {
            let addrs: Vec<u64> = pattern.lane_addrs(base).collect();
            prop_assert_eq!(addrs.len(), 32);
            prop_assert_eq!(addrs[0], base);
        }
    }
}
