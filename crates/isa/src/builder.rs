//! Assembler: builds [`Program`]s with forward-referenceable labels.

use crate::instr::{Cond, Instr, LanePattern, Operand, Reg, Special};
use crate::program::{Program, ProgramError};
use gpgpu_spec::FuOpKind;
use std::collections::HashMap;

/// An opaque jump target handle. Created with [`ProgramBuilder::label`],
/// positioned with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Incremental program assembler.
///
/// Emission methods append one instruction each and return `&mut self` for
/// chaining. Branches may reference labels bound later; targets are patched
/// at [`ProgramBuilder::build`] time.
///
/// # Example
///
/// ```
/// use gpgpu_isa::{ProgramBuilder, Reg, Cond, Operand};
///
/// // for (i = 4; i != 0; i--) { __sinf; }
/// let mut b = ProgramBuilder::new();
/// let i = Reg(0);
/// b.mov_imm(i, 4);
/// let top = b.label();
/// b.bind(top);
/// b.fu(gpgpu_spec::FuOpKind::SpSinf);
/// b.add_imm(i, i, u64::MAX); // i -= 1 (wrapping)
/// b.branch(Cond::Ne, i, Operand::Imm(0), top);
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 5); // 4 + implicit halt
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    next_label: u32,
    bound: HashMap<u32, u32>,
    /// (instruction index, label) pairs awaiting patching.
    fixups: Vec<(u32, u32)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the position of the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound — rebinding is always an
    /// assembler-programming bug.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let pos = self.instrs.len() as u32;
        let prev = self.bound.insert(label.0, pos);
        assert!(prev.is_none(), "label {} bound twice", label.0);
        self
    }

    fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Emits `rd = imm`.
    pub fn mov_imm(&mut self, rd: Reg, imm: u64) -> &mut Self {
        self.emit(Instr::MovImm { rd, imm })
    }

    /// Emits `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mov { rd, rs })
    }

    /// Emits `rd = ra + rb`.
    pub fn add(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.emit(Instr::Add { rd, ra, rb })
    }

    /// Emits `rd = ra - rb`.
    pub fn sub(&mut self, rd: Reg, ra: Reg, rb: Reg) -> &mut Self {
        self.emit(Instr::Sub { rd, ra, rb })
    }

    /// Emits `rd = ra + imm` (wrapping; pass `u64::MAX` to subtract one).
    pub fn add_imm(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.emit(Instr::AddImm { rd, ra, imm })
    }

    /// Emits `rd = ra * imm`.
    pub fn mul_imm(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.emit(Instr::MulImm { rd, ra, imm })
    }

    /// Emits `rd = ra & imm`.
    pub fn and_imm(&mut self, rd: Reg, ra: Reg, imm: u64) -> &mut Self {
        self.emit(Instr::AndImm { rd, ra, imm })
    }

    /// Emits a functional-unit operation.
    pub fn fu(&mut self, op: FuOpKind) -> &mut Self {
        self.emit(Instr::Fu { op })
    }

    /// Emits a constant-memory load from the address in `addr`.
    pub fn const_load(&mut self, addr: Reg) -> &mut Self {
        self.emit(Instr::ConstLoad { addr })
    }

    /// Emits a global load.
    pub fn global_load(&mut self, base: Reg, pattern: LanePattern) -> &mut Self {
        self.emit(Instr::GlobalLoad { base, pattern })
    }

    /// Emits a global store.
    pub fn global_store(&mut self, base: Reg, pattern: LanePattern) -> &mut Self {
        self.emit(Instr::GlobalStore { base, pattern })
    }

    /// Emits a global atomic add.
    pub fn atomic_add(&mut self, base: Reg, pattern: LanePattern) -> &mut Self {
        self.emit(Instr::AtomicAdd { base, pattern })
    }

    /// Emits a shared-memory load.
    pub fn shared_load(&mut self, base: Reg, pattern: LanePattern) -> &mut Self {
        self.emit(Instr::SharedLoad { base, pattern })
    }

    /// Emits a shared-memory store.
    pub fn shared_store(&mut self, base: Reg, pattern: LanePattern) -> &mut Self {
        self.emit(Instr::SharedStore { base, pattern })
    }

    /// Emits `rd = clock()`.
    pub fn read_clock(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instr::ReadClock { rd })
    }

    /// Emits `rd = special`.
    pub fn read_special(&mut self, rd: Reg, special: Special) -> &mut Self {
        self.emit(Instr::ReadSpecial { rd, special })
    }

    /// Emits a push of `value` to the warp's result buffer.
    pub fn push_result(&mut self, value: Reg) -> &mut Self {
        self.emit(Instr::PushResult { value })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Operand, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len() as u32, label.0));
        self.emit(Instr::Branch { cond, a, b, target: u32::MAX })
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.instrs.len() as u32, label.0));
        self.emit(Instr::Jump { target: u32::MAX })
    }

    /// Emits a block-level barrier.
    pub fn bar_sync(&mut self) -> &mut Self {
        self.emit(Instr::BarSync)
    }

    /// Emits an explicit halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Emits a counted loop around `body`: executes it `count` times using
    /// `counter` as the induction register (clobbered). `count` must be
    /// positive; a zero count still executes once (do-while semantics, as
    /// with the paper's measurement loops).
    pub fn repeat<F>(&mut self, counter: Reg, count: u64, body: F) -> &mut Self
    where
        F: FnOnce(&mut Self),
    {
        self.mov_imm(counter, count.max(1));
        let top = self.label();
        self.bind(top);
        body(self);
        self.add_imm(counter, counter, u64::MAX);
        self.branch(Cond::Ne, counter, Operand::Imm(0), top);
        self
    }

    /// Assembles the final [`Program`]: patches label fixups, appends a
    /// trailing [`Instr::Halt`] if the last instruction can fall through,
    /// and validates.
    ///
    /// # Errors
    ///
    /// * [`ProgramError::UnboundLabel`] if a referenced label was never bound.
    /// * Any validation error from [`Program::from_instrs`].
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for &(at, label) in &self.fixups {
            let target = *self.bound.get(&label).ok_or(ProgramError::UnboundLabel { label })?;
            match &mut self.instrs[at as usize] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                other => unreachable!("fixup at non-branch instruction {other:?}"),
            }
        }
        if !matches!(self.instrs.last(), Some(Instr::Halt | Instr::Jump { .. })) {
            self.instrs.push(Instr::Halt);
        }
        Program::from_instrs(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_is_patched() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.jump(done);
        b.fu(FuOpKind::SpAdd); // skipped
        b.bind(done);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0), &Instr::Jump { target: 2 });
    }

    #[test]
    fn backward_label_is_patched() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.fu(FuOpKind::SpAdd);
        b.branch(Cond::Eq, Reg(0), Operand::Imm(0), top);
        let p = b.build().unwrap();
        assert_eq!(p.fetch(1).branch_target(), Some(0));
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label();
        b.jump(nowhere);
        assert_eq!(b.build(), Err(ProgramError::UnboundLabel { label: 0 }));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.halt();
        b.bind(l);
    }

    #[test]
    fn implicit_halt_appended_only_when_needed() {
        let mut b = ProgramBuilder::new();
        b.fu(FuOpKind::SpMul);
        assert_eq!(b.build().unwrap().len(), 2); // op + implicit halt

        let mut b = ProgramBuilder::new();
        b.halt();
        assert_eq!(b.build().unwrap().len(), 1); // explicit halt only
    }

    #[test]
    fn repeat_builds_do_while_loop() {
        let mut b = ProgramBuilder::new();
        b.repeat(Reg(10), 5, |b| {
            b.fu(FuOpKind::SpSinf);
        });
        let p = b.build().unwrap();
        // mov, fu, add_imm, branch, implicit halt
        assert_eq!(p.len(), 5);
        assert_eq!(p.fetch(3).branch_target(), Some(1));
    }

    #[test]
    fn repeat_zero_count_runs_once() {
        let mut b = ProgramBuilder::new();
        b.repeat(Reg(0), 0, |b| {
            b.fu(FuOpKind::SpAdd);
        });
        let p = b.build().unwrap();
        assert_eq!(p.fetch(0), &Instr::MovImm { rd: Reg(0), imm: 1 });
    }

    #[test]
    fn chaining_api() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(Reg(0), 1).add_imm(Reg(0), Reg(0), 2).push_result(Reg(0));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
