//! Instruction and operand definitions.

use gpgpu_spec::FuOpKind;
use std::fmt;

/// A warp-scalar register index (`R0` .. `R63`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second operand of compare/branch instructions: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(i: u64) -> Self {
        Operand::Imm(i)
    }
}

/// Branch condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (unsigned)
    Lt,
    /// `a >= b` (unsigned)
    Ge,
}

impl Cond {
    /// Evaluates the condition on two values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Warp-visible special values readable via [`Instr::ReadSpecial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// The `%smid` register: ID of the SM the block runs on. Reading it per
    /// block is how the paper reverse engineers the block scheduler
    /// (Section 3.1).
    SmId,
    /// Linear block index within the kernel's grid.
    BlockId,
    /// Warp index within the block (0-based).
    WarpIdInBlock,
    /// ID of the warp scheduler this warp was assigned to. On real hardware
    /// this is inferred from `WarpIdInBlock` and the reverse-engineered
    /// round-robin rule; the simulator also exposes it directly so tests can
    /// confirm the inference.
    SchedulerId,
    /// Number of blocks in the kernel's grid.
    GridBlocks,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::SmId => "%smid",
            Special::BlockId => "%ctaid",
            Special::WarpIdInBlock => "%warpid",
            Special::SchedulerId => "%schedid",
            Special::GridBlocks => "%nctaid",
        };
        f.write_str(s)
    }
}

/// How the 32 lane addresses of a warp-level global-memory instruction are
/// derived from the base address register.
///
/// The pattern determines how many memory transactions the coalescer emits,
/// which is the mechanism behind the paper's Section 6 scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LanePattern {
    /// All 32 lanes access the same address (one transaction; on Kepler+
    /// same-address atomics are combined at the L2 at one op per cycle).
    Uniform,
    /// Lane `i` accesses `base + i * elem_bytes`. With a small element size
    /// the warp's accesses fall into one or two 128-byte segments — the
    /// *coalesced* pattern of scenarios 1-2.
    Consecutive {
        /// Per-lane element size in bytes.
        elem_bytes: u64,
    },
    /// Lane `i` accesses `base + i * stride_bytes` with a large stride, so
    /// every lane falls into a different segment — the *un-coalesced*
    /// pattern of scenario 3 (32 transactions per warp instruction).
    Spread {
        /// Per-lane stride in bytes (>= the coalescing segment for full
        /// serialization).
        stride_bytes: u64,
    },
}

impl LanePattern {
    /// The 32 lane addresses for a given base address.
    pub fn lane_addrs(self, base: u64) -> impl Iterator<Item = u64> {
        let step = match self {
            LanePattern::Uniform => 0,
            LanePattern::Consecutive { elem_bytes } => elem_bytes,
            LanePattern::Spread { stride_bytes } => stride_bytes,
        };
        (0..u64::from(gpgpu_spec::WARP_SIZE)).map(move |lane| base + lane * step)
    }
}

impl fmt::Display for LanePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LanePattern::Uniform => write!(f, "uniform"),
            LanePattern::Consecutive { elem_bytes } => write!(f, "consec:{elem_bytes}"),
            LanePattern::Spread { stride_bytes } => write!(f, "spread:{stride_bytes}"),
        }
    }
}

/// One warp-level instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = imm`
    MovImm {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `rd = rs`
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd = ra + rb` (wrapping)
    Add {
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra - rb` (wrapping)
    Sub {
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        rb: Reg,
    },
    /// `rd = ra + imm` (wrapping)
    AddImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate addend.
        imm: u64,
    },
    /// `rd = ra * imm` (wrapping)
    MulImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate factor.
        imm: u64,
    },
    /// `rd = ra & imm` — used for cheap power-of-two modulo, e.g. computing
    /// `warp_id % num_schedulers` when targeting a specific warp scheduler.
    AndImm {
        /// Destination register.
        rd: Reg,
        /// Source register.
        ra: Reg,
        /// Immediate mask.
        imm: u64,
    },
    /// A functional-unit operation (the paper's `__sinf`, `sqrt`, `Add`,
    /// `Mul` in single or double precision). Blocking: the warp resumes when
    /// the operation completes, so a timed loop of these measures the
    /// contention-dependent latency of Figures 6-7.
    Fu {
        /// Which operation to issue.
        op: FuOpKind,
    },
    /// Load through the constant-memory cache hierarchy (L1 -> L2 -> memory).
    /// The address is warp-uniform (constant memory broadcasts). Blocking.
    ConstLoad {
        /// Register holding the byte address.
        addr: Reg,
    },
    /// Global-memory load; lane addresses derived via `pattern`. Blocking.
    GlobalLoad {
        /// Register holding the base byte address.
        base: Reg,
        /// Per-lane address derivation.
        pattern: LanePattern,
    },
    /// Global-memory store; fire-and-forget timing-wise but still consumes
    /// coalescer/memory bandwidth.
    GlobalStore {
        /// Register holding the base byte address.
        base: Reg,
        /// Per-lane address derivation.
        pattern: LanePattern,
    },
    /// Shared-memory load; per-lane addresses via `pattern`. Latency is
    /// governed by bank conflicts (32 word-interleaved banks). Blocking.
    SharedLoad {
        /// Register holding the base byte address (block-local).
        base: Reg,
        /// Per-lane address derivation.
        pattern: LanePattern,
    },
    /// Shared-memory store; same banking behaviour as loads.
    SharedStore {
        /// Register holding the base byte address (block-local).
        base: Reg,
        /// Per-lane address derivation.
        pattern: LanePattern,
    },
    /// Global-memory atomic add (the paper's Section 6 channel primitive).
    /// Blocking; serialized at the atomic units.
    AtomicAdd {
        /// Register holding the base byte address.
        base: Reg,
        /// Per-lane address derivation.
        pattern: LanePattern,
    },
    /// `rd = clock()` — the SM cycle counter.
    ReadClock {
        /// Destination register.
        rd: Reg,
    },
    /// `rd = special`
    ReadSpecial {
        /// Destination register.
        rd: Reg,
        /// Which special value to read.
        special: Special,
    },
    /// Append the value of `value` to this warp's result buffer (host-visible
    /// after the kernel completes; stands in for a store to a results array).
    PushResult {
        /// Register whose value is recorded.
        value: Reg,
    },
    /// Conditional branch: `if cond(a, b) goto target`.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Left-hand operand register.
        a: Reg,
        /// Right-hand operand (register or immediate).
        b: Operand,
        /// Absolute instruction index to jump to.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute instruction index to jump to.
        target: u32,
    },
    /// Block-level barrier (`__syncthreads`): the warp stalls until every
    /// non-halted warp of its block reaches a barrier. Used by the paper's
    /// multi-bit synchronized channel, where one warp per cache set fills or
    /// probes "in parallel" and a control warp runs the handshake.
    BarSync,
    /// Terminate this warp.
    Halt,
}

impl Instr {
    /// The branch target, if this instruction is a control transfer.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::MovImm { rd, imm } => write!(f, "mov   {rd}, #{imm}"),
            Instr::Mov { rd, rs } => write!(f, "mov   {rd}, {rs}"),
            Instr::Add { rd, ra, rb } => write!(f, "add   {rd}, {ra}, {rb}"),
            Instr::Sub { rd, ra, rb } => write!(f, "sub   {rd}, {ra}, {rb}"),
            Instr::AddImm { rd, ra, imm } => write!(f, "add   {rd}, {ra}, #{imm}"),
            Instr::MulImm { rd, ra, imm } => write!(f, "mul   {rd}, {ra}, #{imm}"),
            Instr::AndImm { rd, ra, imm } => write!(f, "and   {rd}, {ra}, #{imm}"),
            Instr::Fu { op } => write!(f, "fu    {op}"),
            Instr::ConstLoad { addr } => write!(f, "ld.const [{addr}]"),
            Instr::GlobalLoad { base, pattern } => write!(f, "ld.global [{base}] {pattern}"),
            Instr::GlobalStore { base, pattern } => write!(f, "st.global [{base}] {pattern}"),
            Instr::SharedLoad { base, pattern } => write!(f, "ld.shared [{base}] {pattern}"),
            Instr::SharedStore { base, pattern } => write!(f, "st.shared [{base}] {pattern}"),
            Instr::AtomicAdd { base, pattern } => write!(f, "atom.add [{base}] {pattern}"),
            Instr::ReadClock { rd } => write!(f, "mov   {rd}, %clock"),
            Instr::ReadSpecial { rd, special } => write!(f, "mov   {rd}, {special}"),
            Instr::PushResult { value } => write!(f, "push  {value}"),
            Instr::Branch { cond, a, b, target } => write!(f, "b.{cond}  {a}, {b} -> @{target}"),
            Instr::Jump { target } => write!(f, "jmp   @{target}"),
            Instr::BarSync => write!(f, "bar.sync"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_table() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(!Cond::Eq.eval(3, 4));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(3, 4));
        assert!(!Cond::Lt.eval(4, 4));
        assert!(Cond::Ge.eval(4, 4));
        assert!(Cond::Ge.eval(5, 4));
    }

    #[test]
    fn lane_pattern_uniform_is_one_address() {
        let addrs: Vec<u64> = LanePattern::Uniform.lane_addrs(0x100).collect();
        assert_eq!(addrs.len(), 32);
        assert!(addrs.iter().all(|&a| a == 0x100));
    }

    #[test]
    fn lane_pattern_consecutive_is_dense() {
        let addrs: Vec<u64> =
            LanePattern::Consecutive { elem_bytes: 4 }.lane_addrs(0x100).collect();
        assert_eq!(addrs[0], 0x100);
        assert_eq!(addrs[31], 0x100 + 31 * 4);
        // All within a single 128-byte segment.
        assert!(addrs.iter().all(|&a| a / 128 == 0x100 / 128));
    }

    #[test]
    fn lane_pattern_spread_hits_distinct_segments() {
        let addrs: Vec<u64> = LanePattern::Spread { stride_bytes: 128 }.lane_addrs(0).collect();
        let mut segments: Vec<u64> = addrs.iter().map(|a| a / 128).collect();
        segments.dedup();
        assert_eq!(segments.len(), 32);
    }

    #[test]
    fn branch_target_extraction() {
        let b = Instr::Branch { cond: Cond::Eq, a: Reg(0), b: Operand::Imm(0), target: 7 };
        assert_eq!(b.branch_target(), Some(7));
        assert_eq!(Instr::Jump { target: 3 }.branch_target(), Some(3));
        assert_eq!(Instr::Halt.branch_target(), None);
    }

    #[test]
    fn disassembly_is_nonempty_and_distinct() {
        let instrs = [
            Instr::MovImm { rd: Reg(1), imm: 42 },
            Instr::Fu { op: FuOpKind::SpSinf },
            Instr::ConstLoad { addr: Reg(2) },
            Instr::Halt,
        ];
        let texts: Vec<String> = instrs.iter().map(|i| i.to_string()).collect();
        assert!(texts.iter().all(|t| !t.is_empty()));
        let mut dedup = texts.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), texts.len());
        assert_eq!(texts[1], "fu    __sinf");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(9u64), Operand::Imm(9));
    }
}
