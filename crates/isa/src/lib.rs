//! Warp-level SIMT instruction set for the `gpgpu-covert` simulator.
//!
//! Every attack kernel in the paper (Naghibijouybari et al., MICRO-50 2017)
//! is, at its core, a loop of timed loads, functional-unit operations,
//! atomics and spin-waits. This crate defines a small instruction set that
//! expresses exactly those kernels, plus a [`ProgramBuilder`] assembler with
//! labels and a disassembler ([`std::fmt::Display`] on [`Instr`] and
//! [`Program`]).
//!
//! # Execution model
//!
//! * Instructions execute at **warp granularity** (SIMT, 32 threads in
//!   lockstep). Control flow is warp-uniform — none of the paper's kernels
//!   diverge within a warp.
//! * Each warp owns [`NUM_REGS`] scalar `u64` registers. Per-lane addresses
//!   for global-memory instructions are derived from a base register via a
//!   [`LanePattern`], which is what determines coalescing behaviour
//!   (paper Section 6, scenarios 1-3).
//! * `ReadClock` reads the SM cycle counter, the direct analogue of CUDA's
//!   `clock()` used throughout the paper for latency measurement.
//!
//! # Example
//!
//! ```
//! use gpgpu_isa::{ProgramBuilder, Reg};
//!
//! // Time a constant load: t0 = clock(); load; t1 = clock(); push(t1 - t0).
//! let mut b = ProgramBuilder::new();
//! let addr = Reg(0);
//! let t0 = Reg(1);
//! let t1 = Reg(2);
//! b.mov_imm(addr, 0x40);
//! b.read_clock(t0);
//! b.const_load(addr);
//! b.read_clock(t1);
//! b.sub(t1, t1, t0);
//! b.push_result(t1);
//! let program = b.build().expect("program assembles");
//! assert_eq!(program.len(), 7); // includes the implicit trailing halt
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod builder;
mod instr;
mod program;

pub use builder::{Label, ProgramBuilder};
pub use instr::{Cond, Instr, LanePattern, Operand, Reg, Special};
pub use program::{Program, ProgramError};

/// Number of scalar registers per warp.
pub const NUM_REGS: u16 = 64;
