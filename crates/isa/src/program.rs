//! Validated instruction sequences.

use crate::instr::{Instr, Reg};
use crate::NUM_REGS;
use std::error::Error;
use std::fmt;

/// Error produced when assembling or validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length.
        len: u32,
    },
    /// An instruction names a register index `>= NUM_REGS`.
    RegisterOutOfRange {
        /// Index of the offending instruction.
        at: u32,
        /// The offending register.
        reg: Reg,
    },
    /// A label was created but never bound to a position
    /// (builder-level error).
    UnboundLabel {
        /// The label's numeric id.
        label: u32,
    },
    /// A label was bound more than once (builder-level error).
    ReboundLabel {
        /// The label's numeric id.
        label: u32,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::TargetOutOfRange { at, target, len } => {
                write!(f, "instruction {at} branches to {target}, beyond program length {len}")
            }
            ProgramError::RegisterOutOfRange { at, reg } => {
                write!(f, "instruction {at} uses register {reg}, beyond r{}", NUM_REGS - 1)
            }
            ProgramError::UnboundLabel { label } => {
                write!(f, "label {label} referenced but never bound")
            }
            ProgramError::ReboundLabel { label } => write!(f, "label {label} bound twice"),
        }
    }
}

impl Error for ProgramError {}

/// A validated, immutable warp program.
///
/// Construct via [`crate::ProgramBuilder`]; the validation invariants
/// (non-empty, all branch targets in range, all registers in range) are
/// established at build time and relied upon by the simulator's fetch loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Validates a raw instruction sequence into a `Program`.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`] variants `Empty`, `TargetOutOfRange` and
    /// `RegisterOutOfRange`.
    pub fn from_instrs(instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        if instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let len = instrs.len() as u32;
        for (i, instr) in instrs.iter().enumerate() {
            let at = i as u32;
            if let Some(target) = instr.branch_target() {
                if target >= len {
                    return Err(ProgramError::TargetOutOfRange { at, target, len });
                }
            }
            for reg in regs_of(instr) {
                if reg.0 >= NUM_REGS {
                    return Err(ProgramError::RegisterOutOfRange { at, reg });
                }
            }
        }
        Ok(Program { instrs })
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range; the simulator only produces in-range
    /// PCs because validation guarantees branch targets are in range and
    /// execution stops at `Halt`.
    pub fn fetch(&self, pc: u32) -> &Instr {
        &self.instrs[pc as usize]
    }

    /// Iterates over the instructions in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:4}: {instr}")?;
        }
        Ok(())
    }
}

/// All register operands named by an instruction.
fn regs_of(instr: &Instr) -> Vec<Reg> {
    match *instr {
        Instr::MovImm { rd, .. } => vec![rd],
        Instr::Mov { rd, rs } => vec![rd, rs],
        Instr::Add { rd, ra, rb } | Instr::Sub { rd, ra, rb } => vec![rd, ra, rb],
        Instr::AddImm { rd, ra, .. }
        | Instr::MulImm { rd, ra, .. }
        | Instr::AndImm { rd, ra, .. } => vec![rd, ra],
        Instr::Fu { .. } | Instr::Jump { .. } | Instr::BarSync | Instr::Halt => vec![],
        Instr::ConstLoad { addr } => vec![addr],
        Instr::GlobalLoad { base, .. }
        | Instr::GlobalStore { base, .. }
        | Instr::SharedLoad { base, .. }
        | Instr::SharedStore { base, .. }
        | Instr::AtomicAdd { base, .. } => vec![base],
        Instr::ReadClock { rd } => vec![rd],
        Instr::ReadSpecial { rd, .. } => vec![rd],
        Instr::PushResult { value } => vec![value],
        Instr::Branch { a, b, .. } => match b {
            crate::instr::Operand::Reg(rb) => vec![a, rb],
            crate::instr::Operand::Imm(_) => vec![a],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Operand};

    #[test]
    fn rejects_empty() {
        assert_eq!(Program::from_instrs(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_out_of_range_target() {
        let p = Program::from_instrs(vec![Instr::Jump { target: 5 }, Instr::Halt]);
        assert_eq!(p, Err(ProgramError::TargetOutOfRange { at: 0, target: 5, len: 2 }));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let p = Program::from_instrs(vec![Instr::MovImm { rd: Reg(64), imm: 0 }, Instr::Halt]);
        assert_eq!(p, Err(ProgramError::RegisterOutOfRange { at: 0, reg: Reg(64) }));
    }

    #[test]
    fn checks_branch_register_operand() {
        let p = Program::from_instrs(vec![
            Instr::Branch { cond: Cond::Eq, a: Reg(0), b: Operand::Reg(Reg(99)), target: 0 },
            Instr::Halt,
        ]);
        assert!(matches!(p, Err(ProgramError::RegisterOutOfRange { reg: Reg(99), .. })));
    }

    #[test]
    fn accepts_self_loop() {
        let p = Program::from_instrs(vec![Instr::Jump { target: 0 }]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.fetch(0), &Instr::Jump { target: 0 });
    }

    #[test]
    fn display_numbers_lines() {
        let p = Program::from_instrs(vec![Instr::Halt]).unwrap();
        assert_eq!(p.to_string(), "   0: halt\n");
    }
}
