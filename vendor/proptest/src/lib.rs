//! Offline vendored stand-in for the parts of `proptest` 1.x this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same calling
//! convention: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`boxed`/`new_tree`, integer-range / tuple / [`collection::vec`]
//! / [`strategy::Just`] / [`prop_oneof!`] strategies, `any::<T>()` for
//! primitives, and [`test_runner::TestRunner`] + [`test_runner::ProptestConfig`].
//!
//! Shrinking is intentionally not implemented: a failing case fails the test
//! directly with the generated inputs (which are deterministic per test name
//! and case index, so failures reproduce exactly). Case counts honor
//! `ProptestConfig::cases` and can be globally overridden with the
//! `PROPTEST_CASES` environment variable, mirroring upstream. The
//! `PROPTEST_RNG_SEED` environment variable (a `u64`) perturbs every test's
//! RNG seed, so CI can pin an exact generation stream — or explore new ones
//! — without touching the tests.

#![forbid(unsafe_code)]

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::{Reason, TestRng, TestRunner};
    use std::fmt;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just a
    /// deterministic function of the runner's RNG state.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value from the strategy.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { gen: Arc::new(move |rng| self.gen_value(rng)) }
        }

        /// Generates a value tree (upstream API shape; here a tree is just
        /// the generated value, since there is no shrinking).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<StubValueTree<Self::Value>, Reason>
        where
            Self: Sized,
        {
            Ok(StubValueTree { value: self.gen_value(runner.rng()) })
        }
    }

    /// A generated value plus (upstream) its shrink state. This stand-in
    /// holds only the value.
    pub trait ValueTree {
        /// The type of value this tree holds.
        type Value;
        /// Returns the current value.
        fn current(&self) -> Self::Value;
    }

    /// The only [`ValueTree`] implementation in this stand-in.
    #[derive(Debug, Clone)]
    pub struct StubValueTree<V> {
        value: V,
    }

    impl<V: Clone> ValueTree for StubValueTree<V> {
        type Value = V;
        fn current(&self) -> V {
            self.value.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Type-erased strategy returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<V> {
        gen: Arc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen: Arc::clone(&self.gen) }
        }
    }

    impl<V> fmt::Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn gen_value(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
    #[derive(Debug, Clone)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u128() % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    start.wrapping_add((rng.next_u128() % span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// `any::<T>()` support: types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// Returns the canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { start: *r.start(), end: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Test runner, RNG, and configuration.
pub mod test_runner {
    /// Why a strategy failed to produce a tree (unused failure mode here,
    /// kept for upstream API shape).
    pub type Reason = String;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 1024 }
        }
    }

    impl ProptestConfig {
        /// Effective case count: `PROPTEST_CASES` in the environment
        /// overrides the configured value, mirroring upstream.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(self.cases)
        }
    }

    /// Deterministic RNG driving strategies (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns the next 128 random bits (for unbiased range reduction).
        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }
    }

    /// Drives strategy generation; mirrors the small part of the upstream
    /// `TestRunner` surface the workspace uses.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed, like upstream `TestRunner::deterministic()`.
        pub fn deterministic() -> Self {
            TestRunner {
                config: ProptestConfig::default(),
                rng: TestRng::from_seed(0x5EED_D15E_A5E5_0000),
            }
        }

        /// A runner seeded deterministically from a test name (used by the
        /// [`crate::proptest!`] macro). When `PROPTEST_RNG_SEED` is set in
        /// the environment (a `u64`), it is mixed into the seed: the stream
        /// stays deterministic per (name, seed) pair, and CI can pin or
        /// rotate the generation stream without editing tests.
        pub fn seeded_for(name: &str, config: ProptestConfig) -> Self {
            let mut seed = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01B3);
            }
            if let Some(extra) =
                std::env::var("PROPTEST_RNG_SEED").ok().and_then(|v| v.parse::<u64>().ok())
            {
                seed ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            TestRunner { config, rng: TestRng::from_seed(seed) }
        }

        /// Number of cases this runner executes.
        pub fn cases(&self) -> u32 {
            self.config.effective_cases()
        }

        /// The RNG strategies draw from.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*` as this workspace
/// uses it.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies (all arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each function body runs once per case with its
/// arguments freshly drawn from their strategies; generation is
/// deterministic per test name and case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::seeded_for(stringify!($name), config);
            for _case in 0..runner.cases() {
                $(let $p = $crate::strategy::Strategy::gen_value(&($s), runner.rng());)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = (0u32..4, 5u32..9, crate::collection::vec(0u8..6, 1..64));
        for _ in 0..200 {
            let (a, b, v) = strat.new_tree(&mut runner).unwrap().current();
            assert!(a < 4 && (5..9).contains(&b));
            assert!((1..64).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 6));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = prop_oneof![Just(0u8), Just(1u8), (2u8..4).prop_map(|x| x)];
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[strat.new_tree(&mut runner).unwrap().current() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rng_seed_env_var_perturbs_the_stream_deterministically() {
        let cfg = || crate::test_runner::ProptestConfig::default();
        let draw = |name: &str| {
            let mut r = crate::test_runner::TestRunner::seeded_for(name, cfg());
            r.rng().next_u64()
        };
        // The test exercises both the set and unset states, so park any
        // ambient value (CI pins one) and put it back afterwards.
        let ambient = std::env::var("PROPTEST_RNG_SEED").ok();
        std::env::remove_var("PROPTEST_RNG_SEED");
        let unseeded = draw("some_test");
        std::env::set_var("PROPTEST_RNG_SEED", "12345");
        let seeded_a = draw("some_test");
        let seeded_b = draw("some_test");
        std::env::set_var("PROPTEST_RNG_SEED", "not-a-number");
        let malformed = draw("some_test");
        std::env::remove_var("PROPTEST_RNG_SEED");
        let restored = draw("some_test");
        if let Some(v) = ambient {
            std::env::set_var("PROPTEST_RNG_SEED", v);
        }
        assert_eq!(seeded_a, seeded_b, "the pinned stream must be deterministic");
        assert_ne!(unseeded, seeded_a, "the env seed must actually change the stream");
        assert_eq!(malformed, unseeded, "unparseable seeds fall back to the name seed");
        assert_eq!(restored, unseeded);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself wires configs, strategies and assertions.
        #[test]
        fn macro_round_trips(x in 0u64..100, ys in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len() < 8, true, "len {}", ys.len());
        }
    }
}
