//! Offline vendored stand-in for the parts of `criterion` 0.5 this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal benchmark harness with the same calling convention:
//! [`Criterion::bench_function`], [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`]. Instead
//! of criterion's statistical analysis it reports min/mean/max wall-clock per
//! iteration over `sample_size` samples.
//!
//! Setting `GPGPU_BENCH_QUICK=1` in the environment clamps every benchmark to
//! a single sample so the whole suite smoke-runs quickly in CI.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Returns true when benchmarks should run a single quick sample (CI smoke
/// mode), controlled by the `GPGPU_BENCH_QUICK` environment variable.
fn quick_mode() -> bool {
    std::env::var("GPGPU_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Timing loop handle passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, recording wall-clock durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// Benchmark driver with the same builder surface as `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = if quick_mode() { 1 } else { self.sample_size };
        let mut b = Bencher { samples, durations: Vec::with_capacity(samples) };
        f(&mut b);
        report(name, &b.durations);
        self
    }
}

fn report(name: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{name:<44} no samples recorded");
        return;
    }
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    println!(
        "{name:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        durations.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group; supports both the positional and the
/// `name = ...; config = ...; targets = ...` forms used by criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(17u64), 17);
    }
}
