//! Offline vendored stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of the surface it needs:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] over integer ranges, and
//! [`rngs::StdRng`]. The generator is a xoshiro256++ seeded through splitmix64
//! — high-quality and deterministic, which is all the simulator requires
//! (statistical interchangeability with upstream `StdRng` streams is *not*
//! required; every consumer in this workspace treats the stream as an opaque
//! deterministic function of the seed).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait for random number generators: produce raw 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                self.start.wrapping_add((draw % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                start.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience extension trait over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random mantissa bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded
    /// via splitmix64. Equal seeds always produce equal streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(0..=3);
            assert!(y <= 3);
            let z: usize = rng.gen_range(0..5usize);
            assert!(z < 5);
        }
    }

    #[test]
    fn inclusive_full_span_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
