//! The analytical fast path side by side with the cycle engine: extract
//! the latency table from the simulator, then compare the closed-form
//! prediction against a simulated run for one representative sweep cell
//! per channel family (the same cells `tests/integration_analytic.rs`
//! holds to the documented tolerances).
//!
//! ```sh
//! cargo run --release --example analytical_fastpath
//! ```

use gpgpu_covert::analytic::{tolerance, AnalyticalModel};
use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::nvlink_channel::NvlinkChannel;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::ChannelOutcome;
use gpgpu_spec::{presets, TopologySpec};

fn main() {
    let spec = presets::tesla_k40c();
    let topology = TopologySpec::dual("kepler").expect("dual topology");
    let mut model = AnalyticalModel::characterize(&spec).expect("characterization suite runs");
    model.characterize_nvlink(&topology).expect("nvlink characterization runs");
    println!(
        "characterized {} from the cycle engine: {} op classes, {} families\n",
        spec.name,
        model.table().ops().count(),
        model.table().families().count()
    );
    println!(
        "{:<8} {:>6} {:>6}  {:>10} {:>10} {:>6}  {:>8} {:>8} {:>6}  {:9}",
        "family",
        "knob",
        "bits",
        "sim kb/s",
        "pred kb/s",
        "err%",
        "sim BER",
        "pred BER",
        "dBER",
        "band"
    );

    let fig5 = Message::pseudo_random(48, 0xF165);
    let short = |seed: u64| Message::pseudo_random(24, seed);
    let cells: Vec<(&str, f64, Message, ChannelOutcome)> = vec![
        ("l1", 8.0, fig5.clone(), {
            L1Channel::new(spec.clone()).with_iterations(8).transmit(&fig5).expect("l1")
        }),
        ("l2", 2.0, fig5.clone(), {
            L2Channel::new(spec.clone()).with_iterations(2).transmit(&fig5).expect("l2")
        }),
        ("sfu", 6.0, short(0x5F0), {
            SfuChannel::new(spec.clone()).with_iterations(6).transmit(&short(0x5F0)).expect("sfu")
        }),
        ("atomic", 6.0, short(0xA70), {
            AtomicChannel::new(spec.clone(), AtomicScenario::OneAddress)
                .with_iterations(6)
                .transmit(&short(0xA70))
                .expect("atomic")
        }),
        ("sync", 0.0, Message::pseudo_random(16, 0x57AC), {
            SyncChannel::new(spec.clone())
                .transmit(&Message::pseudo_random(16, 0x57AC))
                .expect("sync")
        }),
        ("nvlink", 4096.0, Message::pseudo_random(16, 0x12), {
            NvlinkChannel::new(topology.clone())
                .expect("channel builds")
                .with_window(4096)
                .transmit(&Message::pseudo_random(16, 0x12))
                .expect("nvlink")
        }),
    ];

    for (family, knob, msg, sim) in cells {
        let pred = model.predict(family, knob, &msg).expect("family is characterized");
        let tol = tolerance(family);
        let bw_err = 100.0 * (pred.bandwidth_kbps - sim.bandwidth_kbps).abs() / sim.bandwidth_kbps;
        println!(
            "{:<8} {:>6} {:>6}  {:>10.2} {:>10.2} {:>5.1}%  {:>8.4} {:>8.4} {:>6.4}  \
             ±{:.2}/±{:.0}%",
            family,
            knob,
            msg.len(),
            sim.bandwidth_kbps,
            pred.bandwidth_kbps,
            bw_err,
            sim.ber,
            pred.ber,
            (pred.ber - sim.ber).abs(),
            tol.ber_abs,
            tol.bandwidth_rel * 100.0,
        );
        tol.check(sim.ber, sim.bandwidth_kbps, &pred).expect("within the documented band");
    }
    println!("\nevery cell within its documented tolerance band (see DESIGN.md §8)");
}
