//! Reconnaissance: reverse engineer the block scheduler, the warp scheduler
//! and the constant-cache geometry from timing alone, as an attacker with no
//! documentation would (paper Sections 3 and 4.1).
//!
//! ```text
//! cargo run --release --example reverse_engineer
//! ```

use gpgpu_covert::colocation::{reverse_engineer_block_scheduler, reverse_engineer_warp_scheduler};
use gpgpu_covert::microbench::{cache_sweep, fig2_sizes, fig3_sizes, recover_cache_geometry};
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for device in presets::all() {
        println!("==== {} ====", device.name);

        let blocks = reverse_engineer_block_scheduler(&device)?;
        println!("block scheduler:");
        println!("  first kernel SM visit order: {:?}", blocks.first_kernel_sms);
        println!("  round-robin placement      : {}", blocks.round_robin);
        println!("  leftover co-location       : {}", blocks.leftover_colocation);
        println!("  queues when SMs are full   : {}", blocks.queues_when_full);

        let warps = reverse_engineer_warp_scheduler(&device)?;
        println!("warp scheduler:");
        println!("  warp -> scheduler           : {:?}", warps.assignment);
        println!(
            "  schedulers inferred from __sinf latency steps: {}",
            warps.inferred_num_schedulers
        );

        let l1 = recover_cache_geometry(&cache_sweep(&device, 64, &fig2_sizes_for(&device))?);
        println!("constant L1 (from stride-64 sweep): {l1:?}");
        let l2 = recover_cache_geometry(&cache_sweep(&device, 256, &fig3_sizes())?);
        println!("constant L2 (from stride-256 sweep): {l2:?}");
        println!();
    }
    Ok(())
}

/// Figure-2 sizes, shifted for Fermi's larger (4 KB) L1.
fn fig2_sizes_for(device: &gpgpu_spec::DeviceSpec) -> Vec<u64> {
    if device.const_l1.geometry.size_bytes() > 2048 {
        (0..=40).map(|i| 3800 + i * 32).collect()
    } else {
        fig2_sizes()
    }
}
