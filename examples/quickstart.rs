//! Quickstart: send a message through the baseline L1 constant-cache covert
//! channel on a simulated Tesla K40C (paper Section 4.2).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::tesla_k40c();
    println!(
        "device: {} ({} SMs, {} warp schedulers/SM)",
        device.name, device.num_sms, device.sm.num_warp_schedulers
    );

    let channel = L1Channel::new(device);
    let message = Message::from_bytes(b"covert");
    println!("trojan sends : {} ({} bits)", message, message.len());

    let outcome = channel.transmit(&message)?;
    println!("spy received : {}", outcome.received);
    println!("decoded text : {:?}", String::from_utf8_lossy(&outcome.received.to_bytes()));
    println!("bandwidth    : {:.1} Kbps", outcome.bandwidth_kbps);
    println!("bit errors   : {:.2}%", outcome.ber * 100.0);
    assert!(outcome.is_error_free(), "the default operating point is error-free");
    Ok(())
}
