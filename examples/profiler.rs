//! Device observability tour: run a covert-channel pair beside benign
//! workloads and inspect what the simulator records — per-kernel runtimes,
//! placements, instruction mixes, and the contention-anomaly counters a
//! Section-9 detector would monitor.
//!
//! ```text
//! cargo run --release --example profiler
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::mitigations::contention_detection_margin;
use gpgpu_covert::noise::{noise_kernel, NoiseKind};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_sim::Device;
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = presets::tesla_k40c();

    // A mixed benign workload, profiled kernel by kernel.
    let mut dev = Device::new(spec.clone());
    let mut ids = Vec::new();
    for (i, kind) in NoiseKind::ALL.into_iter().enumerate() {
        ids.push(dev.launch(i as u32, noise_kernel(&spec, kind, 30))?);
    }
    dev.run_until_idle(200_000_000)?;
    println!("== benign workload profile ({}) ==", spec.name);
    println!(
        "  {:<22} {:>10} {:>12} {:>10} {:>10} {:>6}",
        "kernel", "cycles", "instructions", "FU ops", "mem ops", "SMs"
    );
    for id in ids {
        let r = dev.results(id)?;
        let (instr, fu, mem) = r.instruction_mix();
        println!(
            "  {:<22} {:>10} {:>12} {:>10} {:>10} {:>6}",
            r.name,
            r.completed_at - r.arrived_at,
            instr,
            fu,
            mem,
            r.sms_used().len()
        );
    }
    let (cross, alternations) = dev.cache_contention_counters();
    println!("  cache cross-domain evictions: {cross}, alternations: {alternations}");

    // The same counters during a covert transmission.
    println!("\n== covert channel under the same microscope ==");
    let msg = Message::from_bytes(b"exfil");
    let run = SyncChannel::new(spec.clone()).transmit_with_noise(&msg, Vec::new())?;
    println!(
        "  {} bits in {} cycles ({:.1} Kbps), BER {:.1}%",
        msg.len(),
        run.outcome.cycles,
        run.outcome.bandwidth_kbps,
        run.outcome.ber * 100.0
    );
    println!("  eviction alternations during transmission: {}", run.eviction_alternations);

    let (channel_score, benign_score) = contention_detection_margin(&spec, &msg)?;
    println!(
        "\n== CC-Hunter-style detector margin ==\n  channel {channel_score} vs benign {benign_score} ({}x)",
        channel_score / benign_score.max(1)
    );
    Ok(())
}
