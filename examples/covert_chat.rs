//! Exfiltrate an ASCII message through the fully optimized channel: the
//! synchronized multi-bit, multi-SM L1 channel of the paper's Table 2
//! (the configuration that reaches 4+ Mbps on the K40C).
//!
//! ```text
//! cargo run --release --example covert_chat
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::tesla_k40c();
    let secret = b"the secret key is 0xDEADBEEF; exfiltrate quietly.";
    let message = Message::from_bytes(secret);

    let data_sets = (device.const_l1.geometry.num_sets() - 2) as u32;
    let sms = device.num_sms;
    let channel = SyncChannel::new(device).with_data_sets(data_sets)?.with_parallel_sms(sms)?;

    println!("transmitting {} bits over {} cache sets x {} SMs...", message.len(), data_sets, sms);
    let outcome = channel.transmit(&message)?;

    println!("received: {:?}", String::from_utf8_lossy(&outcome.received.to_bytes()));
    println!("cycles  : {}", outcome.cycles);
    println!(
        "bandwidth: {:.0} Kbps ({:.2} Mbps)",
        outcome.bandwidth_kbps,
        outcome.bandwidth_kbps / 1e3
    );
    println!("bit error rate: {:.3}%", outcome.ber * 100.0);
    assert!(outcome.is_error_free());
    Ok(())
}
