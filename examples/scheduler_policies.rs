//! Section 3.2: the attack under proposed multiprogramming schedulers.
//!
//! Runs the same co-location recon against the four placement-policy
//! families the simulator implements and reports which attack avenues each
//! leaves open.
//!
//! ```text
//! cargo run --release --example scheduler_policies
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_sim::{DeviceTuning, PlacementPolicy};
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = presets::tesla_k40c();
    let msg = Message::pseudo_random(16, 0x7777);

    println!(
        "policy                   intra-SM sharing  preemptive   L1 channel BER   L2 channel BER"
    );
    for policy in PlacementPolicy::ALL {
        let tuning = DeviceTuning { policy, ..DeviceTuning::none() };
        let l1 = L1Channel::new(spec.clone()).with_tuning(tuning).transmit(&msg)?;
        let l2 = L2Channel::new(spec.clone()).with_tuning(tuning).transmit(&msg)?;
        println!(
            "{:<24} {:>16} {:>11} {:>15.1}% {:>15.1}%",
            format!("{policy:?}"),
            policy.allows_intra_sm_sharing(),
            policy.is_preemptive(),
            l1.ber * 100.0,
            l2.ber * 100.0
        );
    }
    println!();
    println!("Reading: inter-SM partitioning blocks the intra-SM (L1) channel but the");
    println!("cross-SM L2 channel still communicates — the paper's Section 3.2 point that");
    println!("whole-SM multiprogramming does not close the inter-SM channels.");
    Ok(())
}
