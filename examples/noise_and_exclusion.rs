//! Section 8: run the synchronized L1 channel beside Rodinia-like noise
//! workloads, with and without the exclusive co-location defense.
//!
//! ```text
//! cargo run --release --example noise_and_exclusion
//! ```

use gpgpu_covert::bits::{hamming_decode, hamming_encode, Message};
use gpgpu_covert::noise::{run_sync_with_noise, run_sync_with_noise_intensity, NoiseKind};
use gpgpu_spec::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = presets::tesla_k40c();
    let message = Message::pseudo_random(48, 0xFEED);

    println!("-- constant-cache noise, no defense --");
    let open = run_sync_with_noise(&device, &message, &[NoiseKind::ConstantCacheHog], false)?;
    println!("noise co-located: {} | BER: {:.1}%", open.noise_overlapped, open.outcome.ber * 100.0);

    println!("-- constant-cache noise, exclusive co-location --");
    let defended = run_sync_with_noise(&device, &message, &[NoiseKind::ConstantCacheHog], true)?;
    println!(
        "noise co-located: {} | BER: {:.1}%",
        defended.noise_overlapped,
        defended.outcome.ber * 100.0
    );
    assert!(defended.outcome.is_error_free());

    println!("-- full Rodinia-like mixture, exclusive co-location --");
    let mixture = run_sync_with_noise(&device, &message, &NoiseKind::ALL, true)?;
    println!("BER: {:.1}%", mixture.outcome.ber * 100.0);

    // The paper's fallback when exclusion is impossible: error correction.
    // Light, bursty noise leaves scattered single-bit errors that
    // Hamming(7,4) can repair.
    println!("-- lightly noisy channel + Hamming(7,4) forward error correction --");
    let coded = hamming_encode(&message);
    let noisy =
        run_sync_with_noise_intensity(&device, &coded, &[NoiseKind::ConstantCacheHog], false, 6)?;
    let corrected = hamming_decode(&noisy.outcome.received);
    let mut truncated = corrected.bits().to_vec();
    truncated.truncate(message.len());
    let corrected = Message::from_bits(truncated);
    println!(
        "raw BER: {:.1}% -> corrected BER: {:.1}% (bandwidth cost: 7/4)",
        noisy.outcome.ber * 100.0,
        message.bit_error_rate(&corrected) * 100.0
    );
    Ok(())
}
