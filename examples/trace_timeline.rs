//! Figure-4-style trojan/spy interleaving timeline, reconstructed from a
//! cycle-level event trace instead of printf archaeology: transmit a few
//! bits over the baseline L1 channel with an [`gpgpu_sim::EventTrace`]
//! installed, then draw which kernel occupied each SM when, and where the
//! cross-domain evictions (the channel itself) landed.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::L1Channel;
use gpgpu_sim::TraceEvent;
use gpgpu_spec::presets;

/// Width of the rendered timeline in character cells.
const COLS: usize = 72;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = presets::tesla_k40c();
    let msg = Message::from_bits([true, false, true]);
    let ch = L1Channel::new(spec.clone()).with_iterations(4);
    let (outcome, capture) = ch.transmit_traced(&msg, 1 << 20)?;
    let records = capture.records();

    println!("== L1 channel trace timeline ({}) ==", spec.name);
    println!(
        "sent {} -> received {}, {} cycles, {} events ({} dropped)",
        msg,
        outcome.received,
        outcome.cycles,
        capture.events.len(),
        capture.events.dropped(),
    );

    // Block residency intervals per SM, split by kernel name. Open blocks
    // (placed, never finished inside the captured window) extend to the end.
    let is_spy = |k: u32| capture.kernel_names.get(k as usize).is_some_and(|n| n == "spy");
    let last_cycle = records.last().map_or(0, |r| r.cycle).max(1);
    let num_sms = spec.num_sms as usize;
    let mut spy_rows = vec![vec![false; COLS]; num_sms];
    let mut trojan_rows = vec![vec![false; COLS]; num_sms];
    let mut evictions = vec![0u64; num_sms];
    let col_of = |cycle: u64| -> usize { ((cycle * COLS as u64) / (last_cycle + 1)) as usize };
    let mut open: std::collections::HashMap<(u32, u32, u32), u64> =
        std::collections::HashMap::new();
    let mark = |rows: &mut [Vec<bool>], sm: u32, from: u64, to: u64| {
        for cell in &mut rows[sm as usize][col_of(from)..=col_of(to).min(COLS - 1)] {
            *cell = true;
        }
    };
    for r in &records {
        match r.event {
            TraceEvent::BlockPlaced { kernel, block, sm } => {
                open.insert((kernel, block, sm), r.cycle);
            }
            TraceEvent::BlockFinished { kernel, block, sm }
            | TraceEvent::BlockPreempted { kernel, block, sm } => {
                if let Some(start) = open.remove(&(kernel, block, sm)) {
                    let rows = if is_spy(kernel) { &mut spy_rows } else { &mut trojan_rows };
                    mark(rows, sm, start, r.cycle);
                }
            }
            TraceEvent::CacheEviction { sm: Some(sm), .. } => evictions[sm as usize] += 1,
            _ => {}
        }
    }
    for ((kernel, _, sm), start) in open {
        let rows = if is_spy(kernel) { &mut spy_rows } else { &mut trojan_rows };
        mark(rows, sm, start, last_cycle);
    }

    println!("\n  0 cycles {:>width$} cycles", last_cycle, width = COLS - 9);
    for sm in 0..num_sms {
        let row: String = (0..COLS)
            .map(|c| match (spy_rows[sm][c], trojan_rows[sm][c]) {
                (true, true) => '*',
                (true, false) => 'S',
                (false, true) => 'T',
                (false, false) => '.',
            })
            .collect();
        println!("  SM{sm:<3} {row}  {:>5} evictions", evictions[sm]);
    }
    println!("\n  S = spy block resident, T = trojan block resident, * = both (co-residency)");
    println!("  Every 1-bit shows a co-resident window with evictions; 0-bits idle-spin.");
    Ok(())
}
