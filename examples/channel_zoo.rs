//! Every channel family on every device preset, one line each — a tour of
//! the whole library surface.
//!
//! ```text
//! cargo run --release --example channel_zoo
//! ```

use gpgpu_covert::atomic_channel::{AtomicChannel, AtomicScenario};
use gpgpu_covert::bits::Message;
use gpgpu_covert::cache_channel::{L1Channel, L2Channel};
use gpgpu_covert::fu_channel::SfuChannel;
use gpgpu_covert::parallel::{CombinedChannel, ParallelSfuChannel};
use gpgpu_covert::sync_channel::SyncChannel;
use gpgpu_covert::ChannelOutcome;
use gpgpu_spec::presets;

fn row(name: &str, o: &ChannelOutcome) {
    println!("  {name:<34} {:>10.1} Kbps   BER {:>5.1}%", o.bandwidth_kbps, o.ber * 100.0);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let msg = Message::pseudo_random(24, 0xABCD);
    for device in presets::all() {
        println!("==== {} ====", device.name);
        row("L1 cache (baseline)", &L1Channel::new(device.clone()).transmit(&msg)?);
        row("L2 cache (cross-SM)", &L2Channel::new(device.clone()).transmit(&msg)?);
        row("SFU __sinf", &SfuChannel::new(device.clone()).transmit(&msg)?);
        for scenario in AtomicScenario::ALL {
            row(
                &format!("atomic: {}", scenario.label()),
                &AtomicChannel::new(device.clone(), scenario).transmit(&msg)?,
            );
        }
        row("L1 synchronized", &SyncChannel::new(device.clone()).transmit(&msg)?);
        let data_sets = (device.const_l1.geometry.num_sets() - 2) as u32;
        row(
            "L1 sync + multi-bit + all SMs",
            &SyncChannel::new(device.clone())
                .with_data_sets(data_sets)?
                .with_parallel_sms(device.num_sms)?
                .transmit(&msg)?,
        );
        row(
            "SFU parallel (schedulers x SMs)",
            &ParallelSfuChannel::new(device.clone())
                .with_parallel_sms(device.num_sms)?
                .transmit(&msg)?,
        );
        row("combined L1 + SFU", &CombinedChannel::new(device.clone()).transmit(&msg)?);
        println!();
    }
    Ok(())
}
